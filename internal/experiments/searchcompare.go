package experiments

import (
	"accuracytrader/internal/cluster"
	"accuracytrader/internal/core"
	"accuracytrader/internal/metrics"
	"accuracytrader/internal/stats"
	"accuracytrader/internal/textindex"
	"accuracytrader/internal/workload"
)

// SearchWindow is one simulated measurement window of the search service
// under a time-varying arrival rate: the three latency techniques plus
// per-sample accuracy replays for the two approximate techniques.
type SearchWindow struct {
	WindowMs float64
	Arrivals []float64
	Basic    *cluster.Result
	Re       *cluster.Result
	AT       *cluster.Result
	// Accuracy samples: times (ms within the window) with the losses of
	// Partial execution and AccuracyTrader at those requests.
	SampleTimes []float64
	PartialLoss []float64
	ATLoss      []float64
}

// windowArrivals maps one hour of the diurnal pattern onto a simulated
// window of windowMs: the rate profile is time-warped so the within-hour
// trend (increasing / steady / decreasing) is preserved.
func windowArrivals(rng *stats.RNG, p workload.DiurnalPattern, hour int, windowMs float64) []float64 {
	const hourMs = 3600_000.0
	start := float64(hour-1) * hourMs
	var out []float64
	// Thinning over the warped profile.
	maxRate := 0.0
	for i := 0; i <= 16; i++ {
		if r := p.Rate(start + float64(i)*hourMs/16); r > maxRate {
			maxRate = r
		}
	}
	if maxRate <= 0 {
		return nil
	}
	t := 0.0
	for {
		t += rng.Exp(maxRate / 1000)
		if t >= windowMs {
			return out
		}
		warped := start + t/windowMs*hourMs
		if rng.Float64() < p.Rate(warped)/maxRate {
			out = append(out, t)
		}
	}
}

// RunSearchWindow simulates one window of the search workload under all
// techniques and replays sampled queries for accuracy.
func RunSearchWindow(svc *SearchService, arrivals []float64, windowMs float64, seed uint64) (*SearchWindow, error) {
	sc := svc.Scale
	slow := slowdownFunc(seed, sc.Components, windowMs+600000)
	base := cluster.Config{
		Components: sc.Components,
		Arrivals:   arrivals,
		Work:       svc.Work,
		UnitCostMs: sc.searchUnitCostMs(),
		Slowdown:   slow,
		DeadlineMs: sc.DeadlineMs,
		// Paper §4.3: the search engine processes at most the top 40% of
		// ranked aggregated pages (they hold >98% of actual top-10 pages).
		IMaxFrac: 0.4,
	}
	w := &SearchWindow{WindowMs: windowMs, Arrivals: arrivals}
	var err error
	cfgB := base
	cfgB.Technique = cluster.Basic
	if w.Basic, err = cluster.Run(cfgB); err != nil {
		return nil, err
	}
	cfgR := base
	cfgR.Technique = cluster.Reissue
	cfgR.HedgeFloorMs = 2 * fullScanMs
	if w.Re, err = cluster.Run(cfgR); err != nil {
		return nil, err
	}
	cfgA := base
	cfgA.Technique = cluster.AccuracyTrader
	if w.AT, err = cluster.Run(cfgA); err != nil {
		return nil, err
	}
	w.replayAccuracy(svc, seed)
	return w, nil
}

// replayAccuracy samples queries across the window and computes the
// top-10 overlap losses of Partial execution and AccuracyTrader against
// exact processing, using the real search engines and the per-component
// outcomes of the simulation (first Shards components; see package
// comment).
func (w *SearchWindow) replayAccuracy(svc *SearchService, seed uint64) {
	sc := svc.Scale
	n := len(w.Arrivals)
	if n == 0 {
		return
	}
	samples := sc.AccuracySamples
	if samples > n {
		samples = n
	}
	queries := svc.Data.SampleQueries(seed^0x77, samples)
	// The per-shard hit-list collections are reused across samples; the
	// Algorithm 1 runs inside atShardTopK draw engines from the package
	// pool instead of allocating one per (sample × shard).
	var exact, partial, at [][]textindex.Hit
	for i, qs := range queries {
		ridx := i * n / len(queries)
		exact, partial, at = exact[:0], partial[:0], at[:0]
		for s := 0; s < sc.Shards; s++ {
			comp := svc.Comps[s]
			q := comp.Ix.ParseQuery(qs)
			ex := globalHits(textindex.ExactTopK(comp, q, 10), s)
			exact = append(exact, ex)
			if w.Basic.Ops[ridx][s].LatencyMs <= sc.DeadlineMs {
				partial = append(partial, ex)
			}
			at = append(at, globalHits(atShardTopK(comp, q, w.AT.Ops[ridx][s].SetsProcessed), s))
		}
		exTop := textindex.MergeTopK(exact, 10)
		pOverlap := textindex.TopKOverlap(exTop, textindex.MergeTopK(partial, 10))
		aOverlap := textindex.TopKOverlap(exTop, textindex.MergeTopK(at, 10))
		w.SampleTimes = append(w.SampleTimes, w.Arrivals[ridx])
		w.PartialLoss = append(w.PartialLoss, metrics.OverlapLossPct(pOverlap))
		w.ATLoss = append(w.ATLoss, metrics.OverlapLossPct(aOverlap))
	}
}

// globalHits rewrites shard-local doc ids into globally unique ids.
func globalHits(hits []textindex.Hit, shard int) []textindex.Hit {
	out := make([]textindex.Hit, len(hits))
	for i, h := range hits {
		out[i] = textindex.Hit{Doc: shard*10_000_000 + h.Doc, Score: h.Score}
	}
	return out
}

// atShardTopK runs Algorithm 1 on one shard with a fixed set budget via
// a pooled engine and returns its current top-10.
func atShardTopK(comp *textindex.Component, q textindex.Query, k int) []textindex.Hit {
	e := textindex.GetEngine(comp, q)
	core.Run(e, core.BudgetContinue(k), 0)
	hits := e.TopK(10)
	e.Release()
	return hits
}

// MinuteTail returns the per-minute-bin p-th percentile component latency
// for one technique's result, with bins minutes of the represented hour.
func (w *SearchWindow) MinuteTail(res *cluster.Result, p float64, bins int) []float64 {
	s := metrics.NewSeries(w.WindowMs/float64(bins), bins)
	for i, a := range res.Arrivals {
		for _, op := range res.Ops[i] {
			s.Add(a, op.LatencyMs)
		}
	}
	return s.PercentileSeries(p)
}

// MinuteRate returns the per-minute-bin arrival rate in requests/second
// of the represented hour (each bin of the window maps to one minute).
func (w *SearchWindow) MinuteRate(bins int) []float64 {
	binMs := w.WindowMs / float64(bins)
	counts := make([]float64, bins)
	for _, a := range w.Arrivals {
		i := int(a / binMs)
		if i >= 0 && i < bins {
			counts[i]++
		}
	}
	for i := range counts {
		counts[i] /= binMs / 1000
	}
	return counts
}

// MinuteLoss bins the accuracy-loss samples of one technique (per-minute
// means). kind selects "partial" or "at".
func (w *SearchWindow) MinuteLoss(kind string, bins int) []float64 {
	s := metrics.NewSeries(w.WindowMs/float64(bins), bins)
	vals := w.ATLoss
	if kind == "partial" {
		vals = w.PartialLoss
	}
	for i, t := range w.SampleTimes {
		s.Add(t, vals[i])
	}
	return s.MeanSeries()
}

// TailOverall returns the p-th percentile component latency over the
// whole window for one technique's result.
func TailOverall(res *cluster.Result, p float64) float64 {
	return stats.Percentile(res.ComponentLatencies(), p)
}

// MeanLoss returns the mean accuracy loss over the whole window.
func (w *SearchWindow) MeanLoss(kind string) float64 {
	vals := w.ATLoss
	if kind == "partial" {
		vals = w.PartialLoss
	}
	var s stats.Summary
	for _, v := range vals {
		s.Add(v)
	}
	return s.Mean()
}
