package experiments

import (
	"context"
	"fmt"
	"net"
	"strings"
	"testing" // AllocsPerRun: the no-fault-path zero-allocation guard
	"time"

	"accuracytrader/internal/agg"
	"accuracytrader/internal/breaker"
	"accuracytrader/internal/faultinject"
	"accuracytrader/internal/netsvc"
	"accuracytrader/internal/service"
	"accuracytrader/internal/stats"
	"accuracytrader/internal/wire"
)

// The faultcompare experiment (robustness extension, not a paper
// figure) kills, stalls and heals component servers mid-sweep on the
// real networked stack — wire clients against a FrontServer whose
// aggregator fans out over loopback TCP through internal/faultinject
// scripts — and validates the failure-domain contracts:
//
//  1. degradation honesty: no reply is ever served ReplyOK with strata
//     missing, Bounded requests are never served below their accuracy
//     floor (they get the typed ReplyUnavailable instead), Exact never
//     degrades, BestEffort always answers;
//  2. availability: with 1 of N components lost, BestEffort answer
//     rates hold at least (N-1)/N of the healthy phase (health-aware
//     rerouting means in practice they hold ~N/N);
//  3. recovery: after a heal, the killed peer's breaker re-closes via
//     the background dial prober — without request traffic — within a
//     small multiple of the cooldown;
//  4. zero cost when healthy: the no-fault hot path (breaker state
//     check, success feedback, strata accounting) allocates nothing.
const (
	// faultDeadlineMs is the propagated service budget (l_spe): small, so
	// stalled-component phases cycle through trip/probe quickly.
	faultDeadlineMs = 35.0
	// faultCooldownMs is the breaker cooldown before a half-open probe.
	faultCooldownMs = 20.0
	// faultThreshold is the consecutive-failure trip threshold.
	faultThreshold = 3
	// faultBoundedFloor is the Bounded-class accuracy floor: below the
	// (N-1)/N discount of a 1-of-4 loss would be a guaranteed rejection,
	// above it a degraded answer still clears the contract.
	faultBoundedFloor = 0.7
	// faultRecloseBudgetMs bounds how long a healed peer's breaker may
	// take to re-close (probe interval: dial backoff cap + cooldown,
	// with slack for CI schedulers).
	faultRecloseBudgetMs = 1500.0
)

// The SLO-class mix of the sweep, indexed by request number mod 3.
const (
	faultClassBestEffort = iota
	faultClassBounded
	faultClassExact
	faultClasses
)

var faultClassNames = [faultClasses]string{"BestEffort", "Bounded", "Exact"}

// FaultPhase is one measured segment of the kill/stall/heal sweep.
type FaultPhase struct {
	Name  string // phase label ("healthy", "crash comp0", ...)
	Calls int
	// Answered counts payload-carrying replies (ReplyOK or
	// ReplyDegraded) per SLO class; Offered the per-class attempts.
	Answered    [faultClasses]int
	Offered     [faultClasses]int
	Degraded    int // replies served ReplyDegraded
	Unavailable int // typed ReplyUnavailable rejections
	Errors      int // transport or server errors
	// Violations counts contract breaches: an OK reply with missing
	// strata, a Bounded answer below its floor, a degraded Exact, or an
	// unanswered BestEffort.
	Violations int
	MeanAcc    float64 // measured accuracy of payload replies vs exact
	Seconds    float64
	accSum     float64
	accCnt     int
}

// AnsweredFrac returns the answered fraction of one SLO class.
func (p *FaultPhase) AnsweredFrac(class int) float64 {
	if p.Offered[class] == 0 {
		return 0
	}
	return float64(p.Answered[class]) / float64(p.Offered[class])
}

// FaultCompare is the full experiment result.
type FaultCompare struct {
	Servers      int
	Killed       int // index of the faulted component
	DeadlineMs   float64
	BoundedFloor float64
	Phases       []*FaultPhase

	// RecloseMs measures, per heal, how long the faulted peer's breaker
	// took to re-close after Heal() — driven purely by the background
	// dial prober, no request traffic.
	RecloseMs []float64

	// Aggregator failure-handling counters over the whole sweep.
	BreakerOpens int64
	Retries      int64
	Faults       int64

	// NoFaultAllocs is allocs/op of the healthy-path fault machinery
	// (breaker check + success + strata accounting); ZeroAllocOK pins it
	// at zero.
	NoFaultAllocs float64
	ZeroAllocOK   bool
}

// Phase returns the first phase with the given name (nil if none).
func (fc *FaultCompare) Phase(name string) *FaultPhase {
	for _, p := range fc.Phases {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// Violations sums contract breaches over every phase.
func (fc *FaultCompare) Violations() int {
	total := 0
	for _, p := range fc.Phases {
		total += p.Violations
	}
	return total
}

// RunFaultCompare runs the kill/stall/heal sweep at the given scale.
func RunFaultCompare(sc Scale) (*FaultCompare, error) {
	svc, err := BuildAggService(sc)
	if err != nil {
		return nil, err
	}
	comps := svc.Comps
	n := len(comps)

	// Query sample with precomputed exact merged estimates, for the
	// measured-accuracy column.
	nq := sc.AccuracySamples
	if nq > 12 {
		nq = 12
	}
	queries := svc.Data.SampleAggQueries(sc.Seed^0x0fa, nq)
	nKeys := comps[0].T.NumKeys()
	exactEst := make([][]float64, len(queries))
	exact := agg.NewResult(nKeys)
	var scratch agg.Result
	for qi, q := range queries {
		exact = exact.Reset(nKeys)
		for _, c := range comps {
			scratch = agg.ExactResultInto(scratch, c, q)
			exact.Merge(scratch)
		}
		exactEst[qi] = exact.Estimates(q.Op)
	}

	fc := &FaultCompare{
		Servers:      n,
		Killed:       0,
		DeadlineMs:   faultDeadlineMs,
		BoundedFloor: faultBoundedFloor,
	}

	// The no-fault hot path must stay allocation-free: a closed breaker's
	// admission check and success feedback, and the full-fan-out strata
	// accounting of the compose path.
	br := breaker.New(breaker.Config{})
	statuses := make([]uint8, n)
	fc.NoFaultAllocs = testing.AllocsPerRun(1000, func() {
		if br.State() != breaker.Closed {
			panic("breaker opened on the no-fault path")
		}
		br.Success()
		if answered, total := netsvc.DegradeStats(statuses); answered != total {
			panic("full fan-out accounted as degraded")
		}
	})
	fc.ZeroAllocOK = fc.NoFaultAllocs == 0

	// Component servers behind fault-injection scripts: every listener
	// and every aggregator dial goes through the fabric, so one Set()
	// call crashes or stalls a component and Heal() restores it.
	fab := faultinject.NewFabric(sc.Seed)
	handler := netsvc.NewAggBackend(comps, netsvc.BackendOptions{})
	servers := make([]*netsvc.Server, n)
	addrs := make([]string, n)
	scripts := make([]*faultinject.Script, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		addrs[i] = l.Addr().String()
		scripts[i] = fab.Script(addrs[i])
		servers[i] = netsvc.NewServer(handler, netsvc.ServerOptions{Workers: 1, QueueLen: 256})
		go servers[i].Serve(scripts[i].WrapListener(l))
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()

	deadline := time.Duration(faultDeadlineMs * float64(time.Millisecond))
	agr, err := netsvc.NewAggregator(addrs, netsvc.AggregatorOptions{
		Policy:     service.WaitAll,
		Deadline:   deadline,
		Breaker:    breaker.Config{FailThreshold: faultThreshold, Cooldown: time.Duration(faultCooldownMs * float64(time.Millisecond))},
		RedialBase: 5 * time.Millisecond,
		RedialMax:  50 * time.Millisecond,
		Seed:       sc.Seed ^ 0xfa17,
		Dial: func(addr string, timeout time.Duration) (net.Conn, error) {
			return fab.Script(addr).Dialer(func(a string, to time.Duration) (net.Conn, error) {
				return net.DialTimeout("tcp", a, to)
			})(addr, timeout)
		},
	})
	if err != nil {
		return nil, err
	}
	defer agr.Close()
	if err := agr.WaitReady(5 * time.Second); err != nil {
		return nil, err
	}

	fl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	fs := netsvc.NewFrontServer(agr, nil, netsvc.ServerOptions{Workers: 8})
	go fs.Serve(fl)
	defer fs.Close()
	cl, err := netsvc.DialClient(fl.Addr().String(), netsvc.ClientOptions{})
	if err != nil {
		return nil, err
	}
	defer cl.Close()

	qrng := stats.NewRNG(sc.Seed ^ 0x5eed)
	qis := make([]int, 4096)
	for i := range qis {
		qis[i] = qrng.Intn(len(queries))
	}

	// awaitReclose polls the faulted peer's breaker after a heal and
	// records how long the background prober took to re-close it.
	awaitReclose := func() error {
		t0 := time.Now()
		limit := t0.Add(time.Duration(4 * faultRecloseBudgetMs * float64(time.Millisecond)))
		for agr.BreakerState(fc.Killed) != breaker.Closed {
			if !time.Now().Before(limit) {
				return fmt.Errorf("faultcompare: breaker on %s still %v after heal",
					addrs[fc.Killed], agr.BreakerState(fc.Killed))
			}
			time.Sleep(2 * time.Millisecond)
		}
		fc.RecloseMs = append(fc.RecloseMs, float64(time.Since(t0))/float64(time.Millisecond))
		return nil
	}

	sweep := []struct {
		name  string
		mode  faultinject.Mode
		calls int
	}{
		{"healthy", faultinject.None, 150},
		{"crash comp0", faultinject.Crash, 150},
		{"healed", faultinject.None, 100},
		{"stall comp0", faultinject.Stall, 60},
		{"healed again", faultinject.None, 100},
	}
	for _, ph := range sweep {
		if ph.mode == faultinject.None {
			if scripts[fc.Killed].Mode() != faultinject.None {
				scripts[fc.Killed].Heal()
				if err := awaitReclose(); err != nil {
					return nil, err
				}
			}
		} else {
			scripts[fc.Killed].Set(ph.mode)
		}
		phase, err := fc.runPhase(cl, ph.name, ph.calls, queries, exactEst, qis, deadline)
		if err != nil {
			return nil, err
		}
		fc.Phases = append(fc.Phases, phase)
	}

	st := agr.Stats()
	fc.BreakerOpens = st.BreakerOpens
	fc.Retries = st.Retries
	fc.Faults = st.Faults
	return fc, nil
}

// runPhase drives one closed-loop call segment and classifies every
// reply against the per-SLO degradation contract.
func (fc *FaultCompare) runPhase(cl *netsvc.Client, name string, calls int,
	queries []agg.Query, exactEst [][]float64, qis []int, deadline time.Duration) (*FaultPhase, error) {
	p := &FaultPhase{Name: name, Calls: calls}
	t0 := time.Now()
	for r := 0; r < calls; r++ {
		qi := qis[r%len(qis)]
		q := queries[qi]
		class := r % faultClasses
		req := &wire.Request{
			ID: uint64(r), Kind: wire.KindAgg, Subset: -1, Level: wire.NoLevel,
			Agg:      &wire.AggRequest{Op: uint8(q.Op), Lo: q.Lo, Hi: q.Hi},
			Deadline: time.Now().Add(deadline).UnixNano(),
		}
		switch class {
		case faultClassBestEffort:
			req.SLO = wire.SLOBestEffort
		case faultClassBounded:
			req.SLO, req.MinAccuracy = wire.SLOBounded, faultBoundedFloor
		default:
			req.SLO = wire.SLOExact
		}
		p.Offered[class]++
		ctx, cancel := context.WithTimeout(context.Background(), 6*deadline)
		rep, err := cl.Call(ctx, req)
		cancel()
		if err != nil {
			return nil, fmt.Errorf("faultcompare: client call in phase %q: %w", name, err)
		}
		switch rep.Status {
		case wire.ReplyOK, wire.ReplyDegraded:
			p.Answered[class]++
			answered, total := netsvc.DegradeStats(rep.SubStatus)
			if rep.Status == wire.ReplyOK {
				if answered < total {
					p.Violations++ // silent partial served as a full answer
				}
			} else {
				p.Degraded++
				switch {
				case class == faultClassExact:
					p.Violations++ // Exact must fail fast, never degrade
				case class == faultClassBounded && float64(answered)/float64(total) < faultBoundedFloor:
					p.Violations++ // served below the promised floor
				}
			}
			if rep.Agg != nil && len(rep.Agg.Sum) > 0 {
				p.accSum += agg.Accuracy(netsvc.AggResultOf(rep.Agg).Estimates(q.Op), exactEst[qi])
				p.accCnt++
			}
		case wire.ReplyUnavailable:
			p.Unavailable++
			if class == faultClassBestEffort {
				p.Violations++ // BestEffort always answers
			}
		default:
			p.Errors++
		}
	}
	p.Seconds = time.Since(t0).Seconds()
	if p.accCnt > 0 {
		p.MeanAcc = p.accSum / float64(p.accCnt)
	}
	return p, nil
}

// Render formats the sweep as a text report.
func (fc *FaultCompare) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "FAULTCOMPARE: failure-domain hardening sweep (loopback TCP through internal/faultinject scripts)\n")
	fmt.Fprintf(&b, "(%d component servers, component %d faulted; deadline %.0f ms; breaker trips at %d consecutive\n",
		fc.Servers, fc.Killed, fc.DeadlineMs, faultThreshold)
	fmt.Fprintf(&b, " failures, cooldown %.0f ms; class mix BestEffort/Bounded{%.2f}/Exact round-robin)\n\n",
		faultCooldownMs, fc.BoundedFloor)
	fmt.Fprintf(&b, "  %-13s %6s %9s %6s %7s %7s %7s %8s %6s  %s\n",
		"phase", "calls", "answered", "degr", "unavail", "errors", "violat", "acc", "sec", "answered/class")
	for _, p := range fc.Phases {
		total := 0
		for _, a := range p.Answered {
			total += a
		}
		var perClass []string
		for c := 0; c < faultClasses; c++ {
			perClass = append(perClass, fmt.Sprintf("%s %d/%d", faultClassNames[c], p.Answered[c], p.Offered[c]))
		}
		fmt.Fprintf(&b, "  %-13s %6d %9d %6d %7d %7d %7d %8.3f %6.2f  %s\n",
			p.Name, p.Calls, total, p.Degraded, p.Unavailable, p.Errors, p.Violations, p.MeanAcc, p.Seconds,
			strings.Join(perClass, ", "))
	}
	b.WriteString("\n")
	for i, ms := range fc.RecloseMs {
		fmt.Fprintf(&b, "heal %d: breaker re-closed by the background prober in %.1f ms (budget %.0f ms), no traffic needed\n",
			i+1, ms, faultRecloseBudgetMs)
	}
	mark := func(ok bool) string {
		if ok {
			return "ok"
		}
		return "FAIL"
	}
	fmt.Fprintf(&b, "breaker opens %d, retries %d, faults %d over the sweep\n", fc.BreakerOpens, fc.Retries, fc.Faults)
	fmt.Fprintf(&b, "contract violations: %d (want 0) | no-fault path: %s (%.1f allocs/op, want 0)\n",
		fc.Violations(), mark(fc.ZeroAllocOK), fc.NoFaultAllocs)
	b.WriteString("\nReading: during the crash phase the killed component's breaker opens and health-aware routing re-homes\n")
	b.WriteString("its strata on the survivors (every server holds all shards), so BestEffort availability holds and the\n")
	b.WriteString("brief trip window surfaces as honestly-degraded or typed-unavailable replies — never a silently skewed\n")
	b.WriteString("ReplyOK. Stalls are the harder fault: connections stay up, so the breaker flaps trip/probe at the\n")
	b.WriteString("cooldown cadence, bounding how much of the sweep each stall can poison.\n")
	return b.String()
}
