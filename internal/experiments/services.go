package experiments

import (
	"fmt"

	"accuracytrader/internal/agg"
	"accuracytrader/internal/cf"
	"accuracytrader/internal/cluster"
	"accuracytrader/internal/interference"
	"accuracytrader/internal/stats"
	"accuracytrader/internal/svd"
	"accuracytrader/internal/synopsis"
	"accuracytrader/internal/textindex"
	"accuracytrader/internal/workload"
)

// synopsisConfig returns the offline-module configuration for a scale.
func (s Scale) synopsisConfig() synopsis.Config {
	return synopsis.Config{
		SVD:              svd.Config{Dims: 3, Epochs: 25, Seed: s.Seed ^ 0x5f},
		CompressionRatio: s.CompressionRatio,
		FoldInEpochs:     25,
	}
}

// CFService bundles the recommender's real data shards with the work
// models the cluster simulator needs.
type CFService struct {
	Scale Scale
	Data  *workload.RatingsData
	Comps []*cf.Component     // one per shard
	Work  []cluster.WorkModel // one per simulated component
}

// BuildCFService generates rating shards and builds each shard's synopsis
// and aggregated users.
func BuildCFService(sc Scale) (*CFService, error) {
	rcfg := workload.DefaultRatingsConfig()
	rcfg.UsersPerSubset = sc.UsersPerSubset
	rcfg.Items = sc.Items
	rcfg.Seed = sc.Seed
	data := workload.GenerateRatings(rcfg, sc.Shards)
	svc := &CFService{Scale: sc, Data: data}
	for _, m := range data.Subsets {
		comp, err := cf.BuildComponent(m, sc.synopsisConfig())
		if err != nil {
			return nil, fmt.Errorf("experiments: build CF component: %w", err)
		}
		svc.Comps = append(svc.Comps, comp)
	}
	svc.Work = make([]cluster.WorkModel, sc.Components)
	for c := 0; c < sc.Components; c++ {
		comp := svc.Comps[c%sc.Shards]
		svc.Work[c] = cluster.WorkModel{
			FullUnits:     float64(comp.M.NumUsers()),
			SynopsisUnits: float64(len(comp.Aggs)),
			NumGroups:     len(comp.Aggs),
		}
	}
	return svc, nil
}

// Shard returns the real component behind simulated component c.
func (s *CFService) Shard(c int) *cf.Component { return s.Comps[c%s.Scale.Shards] }

// SearchService bundles the search engine's real data shards with the
// work models of the cluster simulator.
type SearchService struct {
	Scale Scale
	Data  *workload.CorpusData
	Comps []*textindex.Component
	Work  []cluster.WorkModel
}

// BuildSearchService generates corpus shards and builds their synopses and
// aggregated pages.
func BuildSearchService(sc Scale) (*SearchService, error) {
	ccfg := workload.DefaultCorpusConfig()
	ccfg.DocsPerSubset = sc.DocsPerSubset
	ccfg.Seed = sc.Seed
	data := workload.GenerateCorpus(ccfg, sc.Shards)
	svc := &SearchService{Scale: sc, Data: data}
	for _, ix := range data.Subsets {
		comp, err := textindex.BuildComponent(ix, sc.synopsisConfig())
		if err != nil {
			return nil, fmt.Errorf("experiments: build search component: %w", err)
		}
		svc.Comps = append(svc.Comps, comp)
	}
	svc.Work = make([]cluster.WorkModel, sc.Components)
	for c := 0; c < sc.Components; c++ {
		comp := svc.Comps[c%sc.Shards]
		svc.Work[c] = cluster.WorkModel{
			FullUnits:     float64(comp.Ix.NumDocs()),
			SynopsisUnits: float64(comp.SynopsisSize()),
			NumGroups:     len(comp.Aggs),
		}
	}
	return svc, nil
}

// Shard returns the real component behind simulated component c.
func (s *SearchService) Shard(c int) *textindex.Component {
	return s.Comps[c%s.Scale.Shards]
}

// aggConfig returns the aggregation application's synopsis-ladder
// configuration for a scale. The finest rate and the per-stratum floor
// are sized so the finest level's measured accuracy clears the
// Bounded{0.90} SLO floor with margin at every scale.
func (s Scale) aggConfig() agg.Config {
	return agg.Config{
		Rates:     []float64{0.03, 0.08, 0.18, 0.40},
		MinSample: 8,
		Seed:      s.Seed ^ 0xa9,
	}
}

// AggConfig exposes the scale's synopsis-ladder configuration so live
// (streaming-ingest) shards compact with the same ladder the frozen
// builds use.
func (s Scale) AggConfig() agg.Config { return s.aggConfig() }

// AggService bundles the aggregation workload's real fact-table shards
// with the work models the cluster simulator needs.
type AggService struct {
	Scale Scale
	Data  *workload.FactsData
	Comps []*agg.Component
	Work  []cluster.WorkModel
}

// BuildAggService generates fact-table shards and builds each shard's
// stratified-sample synopsis ladder.
func BuildAggService(sc Scale) (*AggService, error) {
	fcfg := workload.DefaultFactsConfig()
	fcfg.RowsPerSubset = sc.FactRowsPerSubset
	fcfg.Keys = sc.FactKeys
	fcfg.Seed = sc.Seed
	data := workload.GenerateFacts(fcfg, sc.Shards)
	svc := &AggService{Scale: sc, Data: data}
	for _, t := range data.Subsets {
		comp, err := agg.BuildComponent(t, sc.aggConfig())
		if err != nil {
			return nil, fmt.Errorf("experiments: build agg component: %w", err)
		}
		svc.Comps = append(svc.Comps, comp)
	}
	svc.Work = make([]cluster.WorkModel, sc.Components)
	for c := 0; c < sc.Components; c++ {
		comp := svc.Comps[c%sc.Shards]
		syn := comp.Syn
		ladder := make([]float64, syn.Levels())
		for l := range ladder {
			ladder[l] = float64(syn.SampleUnits(l))
		}
		svc.Work[c] = cluster.WorkModel{
			FullUnits:      float64(comp.T.NumRows()),
			SynopsisUnits:  float64(comp.SynopsisSize()),
			NumGroups:      syn.NumStrata(),
			SynopsisLadder: ladder,
		}
	}
	return svc, nil
}

// Shard returns the real component behind simulated component c.
func (s *AggService) Shard(c int) *agg.Component { return s.Comps[c%s.Scale.Shards] }

// slowdownFunc builds the per-node interference slowdown used by all
// latency runs: one independent trace per component over the horizon.
func slowdownFunc(seed uint64, components int, horizonMs float64) func(int, float64) float64 {
	traces := interference.GenerateNodes(stats.NewRNG(seed^0x1f2e3d4c), components, horizonMs, interference.DefaultConfig())
	return func(c int, t float64) float64 { return traces[c].At(t) }
}
