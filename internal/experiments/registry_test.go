package experiments

import (
	"fmt"
	"os"
	"strings"
	"testing"
)

// TestExperimentsDocCoversRegistry is the anti-drift check: every
// registered experiment name must be mentioned (as `name`) in
// EXPERIMENTS.md, so adding an experiment without documenting it fails
// CI instead of rotting silently.
func TestExperimentsDocCoversRegistry(t *testing.T) {
	doc, err := os.ReadFile("../../EXPERIMENTS.md")
	if err != nil {
		t.Fatal(err)
	}
	text := string(doc)
	for _, e := range Registry() {
		if !strings.Contains(text, fmt.Sprintf("`%s`", e.Name)) {
			t.Errorf("EXPERIMENTS.md does not mention experiment `%s`", e.Name)
		}
	}
}

func TestRegistryWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Registry() {
		if e.Name == "" || e.Artifact == "" || e.About == "" {
			t.Fatalf("incomplete registry entry %+v", e)
		}
		if seen[e.Name] {
			t.Fatalf("duplicate registry entry %q", e.Name)
		}
		seen[e.Name] = true
		if e.Name != strings.ToLower(e.Name) || strings.ContainsAny(e.Name, " \t") {
			t.Fatalf("registry name %q not a flat lowercase token", e.Name)
		}
	}
	for _, reserved := range []string{"list", "all"} {
		if seen[reserved] {
			t.Fatalf("registry must not contain the CLI meta-command %q", reserved)
		}
	}
}
