package experiments

import (
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing" // AllocsPerRun: the disabled-path zero-allocation guard
	"time"

	"accuracytrader/internal/agg"
	"accuracytrader/internal/frontend"
	"accuracytrader/internal/netsvc"
	"accuracytrader/internal/obs"
	"accuracytrader/internal/service"
	"accuracytrader/internal/stats"
	"accuracytrader/internal/wire"
)

// The tracecompare experiment (observability extension, not a paper
// figure) validates the end-to-end decision tracing pipeline on the
// real networked stack: wire clients against a traced FrontServer,
// whose aggregator fans out to component servers over loopback TCP.
// It asserts three contracts —
//
//  1. stitching: in every answered fan-out trace, each answered
//     sub-operation span carries the server-side queue/exec spans that
//     travelled back in its sub-reply (span trees survive the wire);
//  2. accounting: the span tree explains the measured request latency —
//     the critical-path accounted time covers at least
//     traceCoverageFloor of the measured total on average;
//  3. zero cost when off: the disabled tracing path (no recorder)
//     allocates nothing per request.
//
// It also runs an identical untraced pass and reports the measured
// tracing overhead, and renders the per-SLO-class deadline-budget
// breakdown table (obs.Summarize) over the traced pass.
const (
	// traceRequests is the request count per pass (traced and untraced).
	traceRequests = 240
	// traceWorkers is the closed-loop client concurrency.
	traceWorkers = 8
	// traceCoverageFloor is the minimum mean fraction of measured
	// request latency the critical-path spans must account for.
	traceCoverageFloor = 0.5
	// traceCoverageCeil guards against double-counting: accounted time
	// beyond the measured total means a stage was recorded twice (small
	// epsilon for clock jitter between stamps).
	traceCoverageCeil = 1.05
	// traceDeadlineMs is the stamped service budget (l_spe) of Bounded
	// and BestEffort requests.
	traceDeadlineMs = 50.0
)

// TraceCompare is the experiment result.
type TraceCompare struct {
	Servers  int
	Requests int // per pass

	// Traced-pass outcomes.
	Answered     int // traces answered (not rejected)
	FanOuts      int // answered traces that ran a fan-out (no cache here)
	Stitched     int // fan-out traces with complete remote stitching
	CoverageMean float64
	MeanTracedMs float64

	// Untraced-pass outcomes.
	MeanUntracedMs float64
	OverheadPct    float64 // traced vs untraced mean latency

	DisabledAllocs float64 // allocs/op of the disabled tracing path

	StitchOK    bool
	CoverageOK  bool
	ZeroAllocOK bool

	Summary *obs.Summary
}

// OK reports whether every asserted contract held.
func (tc *TraceCompare) OK() bool {
	return tc.StitchOK && tc.CoverageOK && tc.ZeroAllocOK
}

// RunTraceCompare runs the tracing validation at a scale.
func RunTraceCompare(sc Scale) (*TraceCompare, error) {
	svc, err := BuildAggService(sc)
	if err != nil {
		return nil, err
	}
	comps := svc.Comps
	queries := svc.Data.SampleAggQueries(sc.Seed^0x7ace, 16)
	levels := comps[0].Syn.Levels()
	levelAcc := make([]float64, levels)
	for l := 0; l < levels; l++ {
		levelAcc[l] = agg.MeasureLevelAccuracy(comps, queries, l)
	}
	unitCost := time.Duration(sc.aggUnitCostMs() * float64(time.Millisecond))

	tc := &TraceCompare{Servers: len(comps), Requests: traceRequests}

	// (3) Disabled path: TraceFrom on an untraced context returns nil,
	// and every method on the nil receiver is a no-op. One request's
	// worth of trace calls must not allocate.
	bg := context.Background()
	tc.DisabledAllocs = testing.AllocsPerRun(1000, func() {
		tr := obs.TraceFrom(bg)
		tr.SetRequest(uint8(wire.KindAgg), wire.SLOBounded, 0.9, 0)
		tr.SetDecision(obs.VerdictAdmitted, wire.SLOBounded, 1)
		tr.Add(obs.SpanSubOp, 0, time.Time{}, 0, 0)
		tr.Finish(0)
	})
	tc.ZeroAllocOK = tc.DisabledAllocs == 0

	// Traced pass: recorder sized to retain every request.
	rec := obs.NewRecorder(traceRequests+traceWorkers, 64)
	tc.MeanTracedMs, err = tc.runPass(sc, comps, queries, levelAcc, unitCost, rec)
	if err != nil {
		return nil, err
	}
	tc.inspect(rec.Snapshot(0))

	// Untraced pass: identical stack, nil recorder.
	tc.MeanUntracedMs, err = tc.runPass(sc, comps, queries, levelAcc, unitCost, nil)
	if err != nil {
		return nil, err
	}
	if tc.MeanUntracedMs > 0 {
		tc.OverheadPct = 100 * (tc.MeanTracedMs - tc.MeanUntracedMs) / tc.MeanUntracedMs
	}
	return tc, nil
}

// runPass drives traceRequests closed-loop requests through a freshly
// built loopback stack and returns the mean request latency in ms.
func (tc *TraceCompare) runPass(sc Scale, comps []*agg.Component, queries []agg.Query,
	levelAcc []float64, unitCost time.Duration, rec *obs.Recorder) (float64, error) {
	n := len(comps)
	backend := netsvc.NewAggBackend(comps, netsvc.BackendOptions{UnitCost: unitCost})
	servers := make([]*netsvc.Server, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return 0, err
		}
		servers[i] = netsvc.NewServer(backend, netsvc.ServerOptions{Workers: 1, QueueLen: 512})
		go servers[i].Serve(l)
		addrs[i] = l.Addr().String()
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	agr, err := netsvc.NewAggregator(addrs, netsvc.AggregatorOptions{
		Policy: service.WaitAll, Deadline: 2 * time.Second,
	})
	if err != nil {
		return 0, err
	}
	defer agr.Close()
	if err := agr.WaitReady(5 * time.Second); err != nil {
		return 0, err
	}
	ctrl, err := frontend.NewController(frontend.ControllerConfig{
		Levels:        len(levelAcc),
		LevelAccuracy: levelAcc,
	})
	if err != nil {
		return 0, err
	}
	fe, err := frontend.New(agr, frontend.Options{Controller: ctrl})
	if err != nil {
		return 0, err
	}
	fl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	fs := netsvc.NewFrontServer(agr, fe, netsvc.ServerOptions{Tracer: rec})
	go fs.Serve(fl)
	defer fs.Close()

	var mu sync.Mutex
	var totalMs float64
	answered := 0
	var wg sync.WaitGroup
	var firstErr error
	perWorker := traceRequests / traceWorkers
	for w := 0; w < traceWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := netsvc.DialClient(fl.Addr().String(), netsvc.ClientOptions{})
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			defer cl.Close()
			rng := stats.NewRNG(sc.Seed ^ uint64(0xace1+w))
			for i := 0; i < perWorker; i++ {
				r := w*perWorker + i
				q := queries[rng.Intn(len(queries))]
				req := &wire.Request{
					Kind: wire.KindAgg, Subset: -1, Level: wire.NoLevel,
					Agg: &wire.AggRequest{Op: uint8(q.Op), Lo: q.Lo, Hi: q.Hi},
				}
				slo := overloadClassMix(r)
				req.SLO = uint8(slo.Kind)
				req.MinAccuracy = slo.MinAccuracy
				if slo.Kind != frontend.Exact {
					req.Deadline = time.Now().Add(time.Duration(traceDeadlineMs * float64(time.Millisecond))).UnixNano()
				}
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				t0 := time.Now()
				rep, err := cl.Call(ctx, req)
				lat := time.Since(t0)
				cancel()
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				if rep.Status != wire.ReplyOK {
					continue
				}
				mu.Lock()
				totalMs += float64(lat) / float64(time.Millisecond)
				answered++
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return 0, firstErr
	}
	if answered == 0 {
		return 0, fmt.Errorf("tracecompare: no request answered")
	}
	return totalMs / float64(answered), nil
}

// inspect evaluates the stitching and accounting contracts over the
// traced pass's recorded traces.
func (tc *TraceCompare) inspect(views []obs.TraceView) {
	tc.Summary = obs.Summarize(views)
	var coverSum float64
	coverCnt := 0
	coverOK := true
	for _, tv := range views {
		if !tv.Done || tv.Verdict == obs.VerdictRejected {
			continue
		}
		tc.Answered++
		subComps := map[int32]bool{}
		remoteBySubset := map[int32]int{}
		for _, sp := range tv.Spans {
			switch {
			case sp.Kind == obs.SpanSubOp:
				subComps[sp.Comp] = true
			case sp.Remote && (sp.Kind == obs.SpanServerQueue || sp.Kind == obs.SpanServerExec):
				remoteBySubset[sp.Comp]++
			}
		}
		if len(subComps) == 0 {
			continue // cache hit or short-circuit: no fan-out to stitch
		}
		tc.FanOuts++
		// Complete stitching: every answered sub-operation span has both
		// of its server-side spans under the same subset. (Subsets whose
		// budget expired answer Skipped and carry no spans at all — they
		// are absent from both sides, not half-stitched.)
		stitched := len(remoteBySubset) == len(subComps)
		for c := range subComps {
			if remoteBySubset[c] != 2 {
				stitched = false
			}
		}
		if stitched {
			tc.Stitched++
		}
		if tv.DurNs > 0 {
			cover := obs.Accounted(tv) / (float64(tv.DurNs) / float64(time.Millisecond))
			coverSum += cover
			coverCnt++
			if cover > traceCoverageCeil {
				coverOK = false // accounted more than elapsed: double count
			}
		}
	}
	if coverCnt > 0 {
		tc.CoverageMean = coverSum / float64(coverCnt)
	}
	tc.StitchOK = tc.FanOuts > 0 && tc.Stitched == tc.FanOuts
	tc.CoverageOK = coverOK && tc.CoverageMean >= traceCoverageFloor
}

// Render formats the validation report and the budget breakdown table.
func (tc *TraceCompare) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "TRACECOMPARE: end-to-end decision tracing over loopback TCP (%d component servers, %d requests per pass)\n\n",
		tc.Servers, tc.Requests)
	mark := func(v bool) string {
		if v {
			return "ok"
		}
		return "FAIL"
	}
	fmt.Fprintf(&b, "  stitching   %-4s  %d/%d fan-out traces: every answered sub-op span carries both of its server-side spans\n",
		mark(tc.StitchOK), tc.Stitched, tc.FanOuts)
	fmt.Fprintf(&b, "  accounting  %-4s  critical-path spans explain %.0f%% of measured latency on average (floor %.0f%%, ceil %.0f%%)\n",
		mark(tc.CoverageOK), 100*tc.CoverageMean, 100*traceCoverageFloor, 100*traceCoverageCeil)
	fmt.Fprintf(&b, "  disabled    %-4s  %.1f allocs/op with tracing off (want 0)\n",
		mark(tc.ZeroAllocOK), tc.DisabledAllocs)
	fmt.Fprintf(&b, "\n  mean latency: traced %.2f ms vs untraced %.2f ms (overhead %+.1f%%)\n\n",
		tc.MeanTracedMs, tc.MeanUntracedMs, tc.OverheadPct)
	if tc.Summary != nil {
		b.WriteString(tc.Summary.Render())
	}
	return b.String()
}
