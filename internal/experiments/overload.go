package experiments

import (
	"fmt"
	"strings"

	"accuracytrader/internal/cluster"
	"accuracytrader/internal/frontend"
	"accuracytrader/internal/stats"
	"accuracytrader/internal/workload"
)

// The overload sweep (frontend extension, not a paper figure) drives
// the simulated search-shaped service across offered loads from half
// to several times the exact-processing saturation rate and compares:
//
//   - Basic (WaitAll): exact processing, compose when the last
//     component answers.
//   - Partial: the same run composed at the deadline, skipping late
//     components (accuracy = completed fraction).
//   - Frontend+AT: AccuracyTrader components behind the accuracy-aware
//     frontend — admission (inflight cap + queue watermark), 2-replica
//     least-loaded routing, and EWMA load→ladder-level degradation
//     honoring per-request SLO classes.
//
// Goodput counts requests answered within goodLatencyFactor x the
// deadline whose delivered accuracy reaches goodAccuracyFloor; shed
// requests never count. Delivered accuracy is the simulator's model
// estimate: exact results score 1, approximate results score the
// ladder level's synopsis accuracy plus the improvement earned by the
// ranked sets each component had time to process.
const (
	goodAccuracyFloor = 0.5
	goodLatencyFactor = 1.1
)

// overloadClassMix assigns request r its SLO class, interleaved
// deterministically; overloadClassMixLabel must describe it.
const overloadClassMixLabel = "20% Exact / 30% Bounded{0.90} / 50% BestEffort"

func overloadClassMix(r int) frontend.SLO {
	switch r % 10 {
	case 0, 1:
		return frontend.ExactSLO()
	case 2, 3, 4:
		return frontend.BoundedSLO(0.9)
	default:
		return frontend.BestEffortSLO()
	}
}

// overloadLadderAccuracy estimates the synopsis-only accuracy of each
// ladder level, coarse to fine; the finest level matches the paper's
// ~95% initial accuracy and improvement with ranked sets closes the
// rest of the gap.
var overloadLadderAccuracy = []float64{0.55, 0.7, 0.85, 0.95}

// OverloadRow is one configuration at one offered load.
type OverloadRow struct {
	Name          string
	GoodputPerSec float64
	P999Ms        float64
	RejectedPct   float64
	// ClassAccuracy[k] is the mean delivered accuracy of class k
	// (indexed by frontend.SLOKind) over answered requests; NaN-free:
	// classes with no answered requests report 0.
	ClassAccuracy [3]float64
	classCount    [3]int
}

// OverloadPoint is one offered-load step of the sweep.
type OverloadPoint struct {
	Multiplier float64
	RatePerSec float64
	Rows       []OverloadRow
}

// OverloadSweep is the full experiment result.
type OverloadSweep struct {
	SaturationRate float64 // exact-processing saturation, req/s
	DeadlineMs     float64
	WindowSeconds  float64
	Points         []OverloadPoint
}

// overloadWork builds the synthetic search-shaped work model with a
// 4-level synopsis ladder (finest = the Scale's compression ratio).
func overloadWork(sc Scale) cluster.WorkModel {
	full := float64(sc.DocsPerSubset)
	groups := sc.DocsPerSubset / sc.CompressionRatio
	if groups < 1 {
		groups = 1
	}
	syn := full / float64(sc.CompressionRatio)
	return cluster.WorkModel{
		FullUnits:     full,
		SynopsisUnits: syn,
		NumGroups:     groups,
		// Coarse to fine by halving from the regular (finest) synopsis,
		// so the ladder stays ascending at any compression ratio.
		SynopsisLadder: []float64{syn / 8, syn / 4, syn / 2, syn},
	}
}

// RunOverload sweeps offered load across the multipliers (of the
// exact-processing saturation rate) and measures every configuration.
func RunOverload(sc Scale, multipliers []float64) (*OverloadSweep, error) {
	work := overloadWork(sc)
	unit := sc.searchUnitCostMs()
	satRate := 1000 / (work.FullUnits * unit) // one component, exact scans
	windowMs := sc.SessionSeconds * 1000
	sweep := &OverloadSweep{
		SaturationRate: satRate,
		DeadlineMs:     sc.DeadlineMs,
		WindowSeconds:  sc.SessionSeconds,
	}
	base := cluster.Config{
		Components: sc.Components,
		Work:       []cluster.WorkModel{work},
		UnitCostMs: unit,
		DeadlineMs: sc.DeadlineMs,
		// Paper §4.3: the search engine caps improvement at the top 40%
		// of ranked sets.
		IMaxFrac: 0.4,
	}
	for i, m := range multipliers {
		rate := m * satRate
		rng := stats.NewRNG(sc.Seed).Split(uint64(i) + 0x0ad)
		arrivals := workload.PoissonArrivals(rng, rate, windowMs)
		if len(arrivals) == 0 {
			// Dropping the point silently would misalign Points with the
			// requested multipliers.
			return nil, fmt.Errorf("experiments: no arrivals at %gx saturation (%.2f req/s over %.0fs)",
				m, rate, sc.SessionSeconds)
		}
		point := OverloadPoint{Multiplier: m, RatePerSec: rate}

		// Basic and Partial share one exact-processing run.
		cfgB := base
		cfgB.Arrivals = arrivals
		cfgB.Technique = cluster.Basic
		resB, err := cluster.Run(cfgB)
		if err != nil {
			return nil, err
		}
		point.Rows = append(point.Rows,
			scoreBasic(resB, sc, sweep.WindowSeconds, overloadClassMix),
			scorePartial(resB, sc, sweep.WindowSeconds, overloadClassMix))

		// Frontend+AT: fresh policy state per run.
		ctrl, err := frontend.NewController(frontend.ControllerConfig{
			Levels:             len(work.SynopsisLadder),
			LevelAccuracy:      overloadLadderAccuracy,
			InflightSaturation: 4 * sc.Components,
		})
		if err != nil {
			return nil, err
		}
		cfgF := base
		cfgF.Arrivals = arrivals
		cfgF.Technique = cluster.AccuracyTrader
		cfgF.Frontend = &cluster.FrontendConfig{
			Replicas: 2,
			Router:   frontend.NewLeastLoaded(),
			Admission: []frontend.AdmissionPolicy{
				frontend.NewMaxInflight(4 * sc.Components),
				frontend.NewQueueWatermark(0.35, 0.85),
			},
			Controller: ctrl,
			QueueCap:   32,
			ClassOf:    overloadClassMix,
		}
		resF, err := cluster.Run(cfgF)
		if err != nil {
			return nil, err
		}
		point.Rows = append(point.Rows,
			scoreFrontend(resF, cfgF.Work, overloadLadderAccuracy, sc.DeadlineMs, sweep.WindowSeconds))
		sweep.Points = append(sweep.Points, point)
	}
	return sweep, nil
}

// accumulate folds one answered request into a row.
func (row *OverloadRow) accumulate(kind frontend.SLOKind, accuracy float64) {
	row.ClassAccuracy[kind] += accuracy
	row.classCount[kind]++
}

// finish converts accumulated sums into means.
func (row *OverloadRow) finish() {
	for k := range row.ClassAccuracy {
		if row.classCount[k] > 0 {
			row.ClassAccuracy[k] /= float64(row.classCount[k])
		}
	}
}

func scoreBasic(res *cluster.Result, sc Scale, windowSec float64, classOf func(int) frontend.SLO) OverloadRow {
	row := OverloadRow{Name: "Basic (WaitAll)"}
	row.P999Ms = stats.Percentile(res.ComponentLatencies(), 99.9)
	good := 0
	for r, lat := range res.ServiceLatencies(true, 0) {
		row.accumulate(classOf(r).Kind, 1) // exact results
		if lat <= goodLatencyFactor*sc.DeadlineMs {
			good++
		}
	}
	row.GoodputPerSec = float64(good) / windowSec
	row.finish()
	return row
}

func scorePartial(res *cluster.Result, sc Scale, windowSec float64, classOf func(int) frontend.SLO) OverloadRow {
	row := OverloadRow{Name: "PartialGather"}
	row.P999Ms = stats.Percentile(res.ComponentLatencies(), 99.9)
	good := 0
	for r := range res.Ops {
		// Composition at the deadline: latency is capped there, accuracy
		// is the fraction of components that made it.
		acc := res.CompletedFraction(r, sc.DeadlineMs)
		row.accumulate(classOf(r).Kind, acc)
		if acc >= goodAccuracyFloor {
			good++
		}
	}
	row.GoodputPerSec = float64(good) / windowSec
	row.finish()
	return row
}

func scoreFrontend(res *cluster.Result, works []cluster.WorkModel, levelAcc []float64, deadlineMs, windowSec float64) OverloadRow {
	row := OverloadRow{Name: "Frontend+AT"}
	row.P999Ms = stats.Percentile(res.ComponentLatencies(), 99.9)
	svc := res.ServiceLatencies(true, 0)
	good, rejected := 0, 0
	for r := range res.Ops {
		if res.Rejected[r] {
			rejected++
			continue
		}
		acc := requestAccuracy(res, r, works, levelAcc)
		row.accumulate(res.Class[r].Kind, acc)
		if svc[r] <= goodLatencyFactor*deadlineMs && acc >= goodAccuracyFloor {
			good++
		}
	}
	row.GoodputPerSec = float64(good) / windowSec
	row.RejectedPct = 100 * float64(rejected) / float64(len(res.Ops))
	row.finish()
	return row
}

// requestAccuracy is the model estimate of one answered frontend
// request's delivered accuracy: 1 for Exact-class requests (full
// scans), otherwise the ladder level's synopsis accuracy plus the
// ranked-set improvement averaged over components. levelAcc holds the
// per-level synopsis accuracy, coarse to fine (calibrated from real
// replays for the aggregation workload, modeled for the search-shaped
// overload sweep); works follows cluster.Config.Work's length contract
// (one per component, or a single shared model).
func requestAccuracy(res *cluster.Result, r int, works []cluster.WorkModel, levelAcc []float64) float64 {
	if res.Class[r].Kind == frontend.Exact {
		return 1
	}
	la := levelAcc[0]
	if lv := res.Level[r]; lv >= 0 && lv < len(levelAcc) {
		la = levelAcc[lv]
	}
	sum := 0.0
	for c, op := range res.Ops[r] {
		frac := float64(op.SetsProcessed) / float64(works[c%len(works)].NumGroups)
		sum += la + (1-la)*frac
	}
	return sum / float64(len(res.Ops[r]))
}

// Render formats the sweep as a paper-style text table.
func (s *OverloadSweep) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Overload sweep: offered load vs goodput / p99.9 / delivered accuracy\n")
	fmt.Fprintf(&b, "(saturation %.1f req/s exact; deadline %.0f ms; goodput = answered <= %.1fx deadline with accuracy >= %.2f;\n",
		s.SaturationRate, s.DeadlineMs, goodLatencyFactor, goodAccuracyFloor)
	fmt.Fprintf(&b, " class mix %s; window %.0fs)\n\n", overloadClassMixLabel, s.WindowSeconds)
	for _, p := range s.Points {
		fmt.Fprintf(&b, "offered %.2fx saturation (%.1f req/s)\n", p.Multiplier, p.RatePerSec)
		fmt.Fprintf(&b, "  %-16s %12s %12s %9s %10s %14s %12s\n",
			"technique", "goodput/s", "p99.9 (ms)", "shed %", "acc Exact", "acc Bounded.90", "acc BestEff")
		for _, row := range p.Rows {
			fmt.Fprintf(&b, "  %-16s %12.1f %12.1f %9.1f %10.3f %14.3f %12.3f\n",
				row.Name, row.GoodputPerSec, row.P999Ms, row.RejectedPct,
				row.ClassAccuracy[frontend.Exact],
				row.ClassAccuracy[frontend.Bounded],
				row.ClassAccuracy[frontend.BestEffort])
		}
		b.WriteString("\n")
	}
	return b.String()
}
