package experiments

import (
	"math"
	"testing"
)

// The experiment tests assert the qualitative results the paper reports —
// who wins, where the crossover falls, orders of magnitude — at
// QuickScale, so `go test ./...` validates the full reproduction pipeline
// in seconds.

func buildCF(t *testing.T) *CFService {
	t.Helper()
	svc, err := BuildCFService(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

func buildSearch(t *testing.T) *SearchService {
	t.Helper()
	svc, err := BuildSearchService(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

func TestCFServiceShape(t *testing.T) {
	svc := buildCF(t)
	sc := svc.Scale
	if len(svc.Comps) != sc.Shards {
		t.Fatalf("shards = %d", len(svc.Comps))
	}
	if len(svc.Work) != sc.Components {
		t.Fatalf("work models = %d", len(svc.Work))
	}
	for c := 0; c < sc.Components; c++ {
		w := svc.Work[c]
		if w.FullUnits <= 0 || w.NumGroups <= 1 {
			t.Fatalf("component %d work = %+v", c, w)
		}
		// The synopsis must be much smaller than the full scan.
		if w.SynopsisUnits*4 > w.FullUnits {
			t.Fatalf("component %d synopsis not small: %+v", c, w)
		}
		if svc.Shard(c) != svc.Comps[c%sc.Shards] {
			t.Fatal("shard mapping broken")
		}
	}
}

func TestCFComparisonReproducesTable12Shape(t *testing.T) {
	svc := buildCF(t)
	res, err := RunCFComparison(svc, []float64{20, 100})
	if err != nil {
		t.Fatal(err)
	}
	light, heavy := 0, 1
	// Basic explodes under overload (orders of magnitude).
	if res.BasicTail[heavy] < 10*res.BasicTail[light] {
		t.Fatalf("no overload blow-up: light %v heavy %v", res.BasicTail[light], res.BasicTail[heavy])
	}
	// AccuracyTrader stays near the deadline at both loads.
	for _, v := range res.ATTail {
		if v > svc.Scale.DeadlineMs+20 {
			t.Fatalf("AccuracyTrader tail %v far above deadline", v)
		}
	}
	// Under overload AccuracyTrader beats the exact techniques by >10x.
	if res.ATTail[heavy]*10 > res.BasicTail[heavy] || res.ATTail[heavy]*10 > res.ReissueTail[heavy] {
		t.Fatalf("AT reduction too small: AT %v basic %v reissue %v",
			res.ATTail[heavy], res.BasicTail[heavy], res.ReissueTail[heavy])
	}
	// Partial execution's loss collapses under overload; AT's stays small.
	if res.PartialLoss[heavy] < 50 {
		t.Fatalf("partial loss %v too small under overload", res.PartialLoss[heavy])
	}
	if res.ATLoss[heavy] > 20 {
		t.Fatalf("AT loss %v too large under overload", res.ATLoss[heavy])
	}
	if res.ATLoss[heavy] >= res.PartialLoss[heavy] {
		t.Fatal("AT loss should be far below partial execution's")
	}
	// AT processes fewer sets as the load grows (adaptation).
	if res.ATSetsMean[heavy] >= res.ATSetsMean[light] {
		t.Fatalf("no adaptation: sets %v -> %v", res.ATSetsMean[light], res.ATSetsMean[heavy])
	}
	// Renderings include the headline rows.
	if s := res.RenderTable1(); len(s) < 100 {
		t.Fatal("table 1 render empty")
	}
	if s := res.RenderTable2(); len(s) < 100 {
		t.Fatal("table 2 render empty")
	}
}

func TestFig3UpdatingFasterThanCreation(t *testing.T) {
	f3, err := RunFig3(QuickScale(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(f3.Percents) != 10 {
		t.Fatalf("percents = %v", f3.Percents)
	}
	// Incremental updates must be faster than full creation on average
	// (the paper's first Fig. 3 finding). Individual points are wall-time
	// measurements and can be perturbed by co-running test packages, so
	// the assertion uses the means.
	var addSum, chSum float64
	for i := range f3.Percents {
		addSum += f3.AddMs[i]
		chSum += f3.ChangeMs[i]
	}
	if addSum/10 >= f3.CreationMs || chSum/10 >= f3.CreationMs {
		t.Fatalf("mean update not faster than creation: add=%v change=%v create=%v",
			addSum/10, chSum/10, f3.CreationMs)
	}
	if len(f3.Render()) < 100 {
		t.Fatal("render empty")
	}
}

func TestFig4SectionsDecrease(t *testing.T) {
	cfSvc := buildCF(t)
	sSvc := buildSearch(t)
	f4, err := RunFig4(cfSvc, sSvc, 60)
	if err != nil {
		t.Fatal(err)
	}
	// Top sections must hold far more accuracy-relevant points than the
	// bottom sections (paper Fig. 4: monotone decrease).
	cfTop := f4.SectionsCF[0] + f4.SectionsCF[1]
	cfBottom := f4.SectionsCF[8] + f4.SectionsCF[9]
	if cfTop < 2*cfBottom {
		t.Fatalf("CF sections not concentrated: top %v bottom %v", cfTop, cfBottom)
	}
	sTop := f4.SectionsSearch[0] + f4.SectionsSearch[1]
	sBottom := f4.SectionsSearch[8] + f4.SectionsSearch[9]
	if sTop < 5*sBottom+10 {
		t.Fatalf("search sections not concentrated: top %v bottom %v", sTop, sBottom)
	}
	// The paper's imax=40% rationale: the top four sections hold almost
	// all actual top-10 pages.
	if f4.TopSectionsShare(4) < 80 {
		t.Fatalf("top-4 share %v below 80%%", f4.TopSectionsShare(4))
	}
	if len(f4.Render()) < 100 {
		t.Fatal("render empty")
	}
}

func TestHourFiguresShapes(t *testing.T) {
	svc := buildSearch(t)
	hf, err := RunHourFigures(svc)
	if err != nil {
		t.Fatal(err)
	}
	if len(hf.Windows) != 3 {
		t.Fatalf("windows = %d", len(hf.Windows))
	}
	for i, hour := range hf.Hours {
		w := hf.Windows[i]
		if len(w.Arrivals) == 0 {
			t.Fatalf("hour %d: no arrivals", hour)
		}
		// AccuracyTrader's overall tail stays near the deadline while the
		// exact techniques run in the seconds under daytime load.
		atTail := TailOverall(w.AT, 99.9)
		if atTail > svc.Scale.DeadlineMs+25 {
			t.Fatalf("hour %d: AT tail %v", hour, atTail)
		}
		baTail := TailOverall(w.Basic, 99.9)
		if baTail < 5*atTail {
			t.Fatalf("hour %d: basic %v vs AT %v — expected >5x gap", hour, baTail, atTail)
		}
		// Accuracy: AT loses much less than partial execution.
		if pl, al := w.MeanLoss("partial"), w.MeanLoss("at"); al >= pl {
			t.Fatalf("hour %d: AT loss %v not below partial %v", hour, al, pl)
		}
	}
	// Hour 9 ramps: the second half must be busier than the first.
	w9 := hf.Windows[0]
	rates := w9.MinuteRate(hf.Bins)
	first, second := 0.0, 0.0
	for i, r := range rates {
		if i < len(rates)/2 {
			first += r
		} else {
			second += r
		}
	}
	if second <= first {
		t.Fatalf("hour 9 not ramping: %v then %v", first, second)
	}
	if len(hf.RenderFig5()) < 200 || len(hf.RenderFig6()) < 100 {
		t.Fatal("renders empty")
	}
}

func TestDayFiguresShapes(t *testing.T) {
	svc := buildSearch(t)
	day, err := RunDayFigures(svc)
	if err != nil {
		t.Fatal(err)
	}
	// Night trough vs daytime rates.
	if day.HourRate[4] > day.HourRate[20]/3 {
		t.Fatalf("diurnal shape wrong: hour5 %v hour21 %v", day.HourRate[4], day.HourRate[20])
	}
	// Daytime hours: basic explodes, AT pinned near deadline.
	for _, h := range []int{10, 15, 20} {
		if day.BasicTail[h] < 500 {
			t.Fatalf("hour %d basic %v not saturated", h+1, day.BasicTail[h])
		}
		if day.ATTail[h] > svc.Scale.DeadlineMs+25 {
			t.Fatalf("hour %d AT %v above bound", h+1, day.ATTail[h])
		}
		if day.PartialLoss[h] < 30 {
			t.Fatalf("hour %d partial loss %v too small", h+1, day.PartialLoss[h])
		}
		if day.ATLoss[h] > 25 {
			t.Fatalf("hour %d AT loss %v too large", h+1, day.ATLoss[h])
		}
	}
	// Night hours stay light for the exact techniques too.
	for _, h := range []int{3, 4} {
		if day.BasicTail[h] > 2000 {
			t.Fatalf("hour %d basic %v implausibly heavy at night", h+1, day.BasicTail[h])
		}
	}
	if len(day.RenderFig7()) < 200 || len(day.RenderFig8()) < 100 {
		t.Fatal("renders empty")
	}
}

func TestCreationReport(t *testing.T) {
	rep, err := RunCreation(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if rep.CFPoints <= 0 || rep.SearchPoints <= 0 {
		t.Fatal("no points")
	}
	if rep.CFGroups <= 1 || rep.SearchGroups <= 1 {
		t.Fatalf("groups: %d/%d", rep.CFGroups, rep.SearchGroups)
	}
	if rep.CFMeanGroupSize < 2 || rep.SearchMeanGroupSize < 2 {
		t.Fatal("groups too small")
	}
	if rep.CFStep1Ms < 0 || rep.CFStep2Ms < 0 || rep.CFStep3Ms < 0 {
		t.Fatalf("negative timings: %+v", rep)
	}
	if len(rep.Render()) < 100 {
		t.Fatal("render empty")
	}
}

func TestHeadlineRatios(t *testing.T) {
	svc := buildCF(t)
	cfc, err := RunCFComparison(svc, []float64{20, 60, 100})
	if err != nil {
		t.Fatal(err)
	}
	sSvc := buildSearch(t)
	day, err := RunDayFigures(sSvc)
	if err != nil {
		t.Fatal(err)
	}
	h := ComputeHeadline(cfc, day, sSvc.Scale.SearchPeakRate)
	if h.CFTailReductionVsReissue < 5 {
		t.Fatalf("CF tail reduction %v too small", h.CFTailReductionVsReissue)
	}
	if h.SearchTailReductionVsReissue < 5 {
		t.Fatalf("search tail reduction %v too small", h.SearchTailReductionVsReissue)
	}
	if h.CFLossReductionVsPartial < 3 {
		t.Fatalf("CF loss reduction %v too small", h.CFLossReductionVsPartial)
	}
	if h.SearchLossReductionVsPartial < 3 {
		t.Fatalf("search loss reduction %v too small", h.SearchLossReductionVsPartial)
	}
	if math.IsNaN(h.CFATLoss) || h.CFATLoss > 25 {
		t.Fatalf("CF AT loss %v", h.CFATLoss)
	}
	if len(h.Render()) < 100 {
		t.Fatal("render empty")
	}
}

func TestWindowArrivalsFollowPattern(t *testing.T) {
	svc := buildSearch(t)
	hf, err := RunHourFigures(svc)
	if err != nil {
		t.Fatal(err)
	}
	// Hour 24 declines: first half busier than second.
	w := hf.Windows[2]
	rates := w.MinuteRate(hf.Bins)
	first, second := 0.0, 0.0
	for i, r := range rates {
		if i < len(rates)/2 {
			first += r
		} else {
			second += r
		}
	}
	if first <= second {
		t.Fatalf("hour 24 not declining: %v then %v", first, second)
	}
}

func TestOverloadSweepFrontendWins(t *testing.T) {
	sw, err := RunOverload(QuickScale(), []float64{0.5, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Points) != 2 {
		t.Fatalf("points = %d", len(sw.Points))
	}
	for _, p := range sw.Points {
		if len(p.Rows) != 3 {
			t.Fatalf("rows = %d", len(p.Rows))
		}
	}
	// Below saturation everyone keeps up and the exact techniques
	// deliver full accuracy.
	calm := sw.Points[0]
	basic, partial, fe := calm.Rows[0], calm.Rows[1], calm.Rows[2]
	if basic.GoodputPerSec < 0.8*calm.RatePerSec {
		t.Fatalf("calm basic goodput %v at rate %v", basic.GoodputPerSec, calm.RatePerSec)
	}
	if basic.ClassAccuracy[0] != 1 || partial.ClassAccuracy[2] != 1 {
		t.Fatal("calm exact techniques not fully accurate")
	}
	// At 2x saturation the frontend sustains far higher goodput at a
	// far lower component p99.9 than both exact techniques, while
	// still answering Exact-class requests exactly and Bounded-class
	// requests above their floor.
	hot := sw.Points[1]
	basic, partial, fe = hot.Rows[0], hot.Rows[1], hot.Rows[2]
	if fe.GoodputPerSec < 2*basic.GoodputPerSec || fe.GoodputPerSec < 2*partial.GoodputPerSec {
		t.Fatalf("overloaded frontend goodput %v vs basic %v / partial %v",
			fe.GoodputPerSec, basic.GoodputPerSec, partial.GoodputPerSec)
	}
	if fe.GoodputPerSec < 0.5*hot.RatePerSec {
		t.Fatalf("overloaded frontend goodput %v collapsed at rate %v", fe.GoodputPerSec, hot.RatePerSec)
	}
	if fe.P999Ms >= basic.P999Ms/2 {
		t.Fatalf("frontend p99.9 %v not well below basic %v", fe.P999Ms, basic.P999Ms)
	}
	if fe.ClassAccuracy[0] != 1 {
		t.Fatalf("exact class accuracy %v under overload", fe.ClassAccuracy[0])
	}
	if fe.ClassAccuracy[1] < 0.9 {
		t.Fatalf("bounded class accuracy %v below its floor", fe.ClassAccuracy[1])
	}
	// Best-effort requests pay the degradation; bounded may not go
	// below them.
	if fe.ClassAccuracy[2] > fe.ClassAccuracy[1] {
		t.Fatalf("best-effort %v above bounded %v", fe.ClassAccuracy[2], fe.ClassAccuracy[1])
	}
	if len(sw.Render()) < 200 {
		t.Fatal("render empty")
	}
}
