//go:build race

package experiments

// raceEnabled reports whether the race detector is compiled in. The
// detector randomizes sync.Pool reuse, so pooled-path zero-allocation
// assertions are informational-only under -race.
const raceEnabled = true
