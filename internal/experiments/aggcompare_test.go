package experiments

import "testing"

func TestAggServiceShape(t *testing.T) {
	svc, err := BuildAggService(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	sc := svc.Scale
	if len(svc.Comps) != sc.Shards || len(svc.Work) != sc.Components {
		t.Fatalf("shards %d work %d", len(svc.Comps), len(svc.Work))
	}
	for c := 0; c < sc.Components; c++ {
		w := svc.Work[c]
		if w.FullUnits <= 0 || w.NumGroups <= 1 {
			t.Fatalf("component %d work = %+v", c, w)
		}
		// The finest sample must still be much smaller than the shard.
		if w.SynopsisUnits*2 > w.FullUnits {
			t.Fatalf("component %d synopsis not small: %+v", c, w)
		}
		// The ladder must be ascending and end at the finest synopsis.
		for l := 1; l < len(w.SynopsisLadder); l++ {
			if w.SynopsisLadder[l] <= w.SynopsisLadder[l-1] {
				t.Fatalf("component %d ladder not ascending: %v", c, w.SynopsisLadder)
			}
		}
		if w.SynopsisLadder[len(w.SynopsisLadder)-1] != w.SynopsisUnits {
			t.Fatalf("component %d ladder top %v != synopsis %v",
				c, w.SynopsisLadder[len(w.SynopsisLadder)-1], w.SynopsisUnits)
		}
		if svc.Shard(c) != svc.Comps[c%sc.Shards] {
			t.Fatal("shard mapping broken")
		}
	}
}

// TestAggCompareLadderMonotone asserts the experiment's core claims:
// accuracy rises monotonically with the ladder level, Algorithm 1's
// improvement never hurts, and modeled latency grows with the level.
func TestAggCompareLadderMonotone(t *testing.T) {
	res, err := RunAggCompare(QuickScale(), []float64{0.5, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Levels) < 3 {
		t.Fatalf("only %d ladder levels", len(res.Levels))
	}
	for i, row := range res.Levels {
		if row.SynAccuracy <= 0 || row.SynAccuracy > 1 {
			t.Fatalf("level %d accuracy %v outside (0,1]", i, row.SynAccuracy)
		}
		if row.ImprovedAcc < row.SynAccuracy {
			t.Fatalf("level %d improvement hurts: %v -> %v", i, row.SynAccuracy, row.ImprovedAcc)
		}
		if i == 0 {
			continue
		}
		prev := res.Levels[i-1]
		if row.SynAccuracy <= prev.SynAccuracy {
			t.Fatalf("accuracy not increasing: level %d %v vs level %d %v",
				i, row.SynAccuracy, i-1, prev.SynAccuracy)
		}
		if row.ModelMs <= prev.ModelMs {
			t.Fatalf("model latency not increasing: level %d %v vs %v", i, row.ModelMs, prev.ModelMs)
		}
	}
	// The finest level must be accurate enough to serve Bounded{0.90}.
	finest := res.Levels[len(res.Levels)-1]
	if finest.SynAccuracy < 0.9 {
		t.Fatalf("finest level accuracy %v below the Bounded floor", finest.SynAccuracy)
	}
}

// TestAggCompareOverloadHonorsSLOs asserts the Bounded class is held at
// or above its accuracy floor, Exact requests stay exact, and the
// frontend beats the exact techniques under overload — the same shape
// as the search overload sweep, now on the third workload.
func TestAggCompareOverloadHonorsSLOs(t *testing.T) {
	res, err := RunAggCompare(QuickScale(), []float64{0.5, 2})
	if err != nil {
		t.Fatal(err)
	}
	sw := res.Overload
	if len(sw.Points) != 2 {
		t.Fatalf("points = %d", len(sw.Points))
	}
	for _, p := range sw.Points {
		fe := p.Rows[2]
		if fe.ClassAccuracy[0] != 1 {
			t.Fatalf("%gx: exact class accuracy %v", p.Multiplier, fe.ClassAccuracy[0])
		}
		// The acceptance bar: Bounded{0.90} delivers >= its MinAccuracy.
		if fe.ClassAccuracy[1] < 0.9 {
			t.Fatalf("%gx: bounded class accuracy %v below its 0.90 floor", p.Multiplier, fe.ClassAccuracy[1])
		}
	}
	hot := sw.Points[1]
	basic, partial, fe := hot.Rows[0], hot.Rows[1], hot.Rows[2]
	if fe.GoodputPerSec < 2*basic.GoodputPerSec || fe.GoodputPerSec < 2*partial.GoodputPerSec {
		t.Fatalf("overloaded frontend goodput %v vs basic %v / partial %v",
			fe.GoodputPerSec, basic.GoodputPerSec, partial.GoodputPerSec)
	}
	if fe.P999Ms >= basic.P999Ms/2 {
		t.Fatalf("frontend p99.9 %v not well below basic %v", fe.P999Ms, basic.P999Ms)
	}
	if len(res.Render()) < 300 {
		t.Fatal("render empty")
	}
}
