package experiments

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"time"

	"accuracytrader/internal/cf"
	"accuracytrader/internal/stats"
	"accuracytrader/internal/synopsis"
	"accuracytrader/internal/textindex"
	"accuracytrader/internal/workload"
)

// Fig3 is the synopsis-updating overhead experiment (paper Figure 3): for
// i = 1..10, update one component's synopsis after i% of the data points
// were added (category 1) or changed (category 2), and measure the wall
// time of the incremental update including re-aggregation.
type Fig3 struct {
	Percents   []int
	AddMs      []float64
	ChangeMs   []float64
	CreationMs float64 // full synopsis creation, for reference
	Repeats    int
}

// RunFig3 measures incremental updating on a CF data subset.
func RunFig3(sc Scale, repeats int) (*Fig3, error) {
	if repeats <= 0 {
		repeats = 3
	}
	rcfg := workload.DefaultRatingsConfig()
	rcfg.UsersPerSubset = sc.UsersPerSubset
	rcfg.Items = sc.Items
	rcfg.Seed = sc.Seed
	data := workload.GenerateRatings(rcfg, 1)
	m := data.Subsets[0]

	t0 := time.Now()
	base, err := cf.BuildComponent(m, sc.synopsisConfig())
	if err != nil {
		return nil, err
	}
	creationMs := float64(time.Since(t0)) / float64(time.Millisecond)

	// Persist once; every scenario resumes from the stored synopsis, as
	// the paper prescribes.
	var img bytes.Buffer
	if err := base.Syn.Save(&img); err != nil {
		return nil, err
	}
	snapshot := img.Bytes()

	out := &Fig3{CreationMs: creationMs, Repeats: repeats}
	rng := stats.NewRNG(sc.Seed ^ 0xf16)
	for i := 1; i <= 10; i++ {
		n := m.NumUsers() * i / 100
		if n < 1 {
			n = 1
		}
		var addSum, chSum stats.Summary
		for r := 0; r < repeats; r++ {
			addMs, err := timeUpdate(sc, data, snapshot, rng, n, synopsis.Add)
			if err != nil {
				return nil, err
			}
			addSum.Add(addMs)
			chMs, err := timeUpdate(sc, data, snapshot, rng, n, synopsis.Modify)
			if err != nil {
				return nil, err
			}
			chSum.Add(chMs)
		}
		out.Percents = append(out.Percents, i)
		out.AddMs = append(out.AddMs, addSum.Mean())
		out.ChangeMs = append(out.ChangeMs, chSum.Mean())
	}
	return out, nil
}

// timeUpdate loads the stored synopsis, applies n changes of one kind and
// returns the update wall time (ms).
func timeUpdate(sc Scale, data *workload.RatingsData, snapshot []byte, rng *stats.RNG, n int, kind synopsis.Kind) (float64, error) {
	rcfg := workload.DefaultRatingsConfig()
	rcfg.UsersPerSubset = sc.UsersPerSubset
	rcfg.Items = sc.Items
	rcfg.Seed = sc.Seed
	fresh := workload.GenerateRatings(rcfg, 1)
	m := fresh.Subsets[0]
	syn, err := synopsis.Load(bytes.NewReader(snapshot))
	if err != nil {
		return 0, err
	}
	comp := &cf.Component{M: m, Syn: syn}
	comp.Aggs = cf.AggregateGroups(m, syn.Groups(), nil)

	reqs := data.SampleCFRequests(rng.Uint64(), n, 0.2)
	changes := make([]synopsis.Change, 0, n)
	for k := 0; k < n; k++ {
		var ratings []cf.Rating
		if k < len(reqs) {
			ratings = reqs[k].Known
		} else {
			ratings = m.Ratings(k % m.NumUsers())
		}
		switch kind {
		case synopsis.Add:
			uid := m.AddUser(ratings)
			changes = append(changes, synopsis.Change{Kind: synopsis.Add, Cells: cf.FeatureSource{M: m}.Features(uid)})
		case synopsis.Modify:
			target := (k * 7) % sc.UsersPerSubset
			m.SetUser(target, ratings)
			changes = append(changes, synopsis.Change{Kind: synopsis.Modify, Point: target, Cells: cf.FeatureSource{M: m}.Features(target)})
		}
	}
	t0 := time.Now()
	if _, err := comp.ApplyChanges(changes); err != nil {
		return 0, err
	}
	return float64(time.Since(t0)) / float64(time.Millisecond), nil
}

// Render prints the Figure 3 analogue.
func (f *Fig3) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIGURE 3. Synopsis updating time (ms) vs proportion of changed input data\n")
	fmt.Fprintf(&b, "(synopsis creation for reference: %.0f ms; mean of %d repeats)\n", f.CreationMs, f.Repeats)
	writeSeries(&b, "percent changed", intsToFloats(f.Percents))
	writeSeries(&b, "new points added", f.AddMs)
	writeSeries(&b, "points changed", f.ChangeMs)
	return b.String()
}

func intsToFloats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// Fig4 is the synopsis-effectiveness experiment (paper Figure 4): rank
// the aggregated data points by estimated correlation, divide the ranking
// into 10 sections, and measure how the accuracy-relevant original data
// points distribute over the sections.
type Fig4 struct {
	// SectionsCF[i] is the average percentage of highly related original
	// users (|weight| > 0.8 to the active user) among the users of ranked
	// section i (Figure 4a).
	SectionsCF [10]float64
	// SectionsSearch[i] is the average percentage of the actual top-10
	// pages found in ranked section i (Figure 4b; sums to <= 100).
	SectionsSearch [10]float64
	RequestsCF     int
	RequestsSearch int
}

// RunFig4 evaluates correlation ranking quality on both services.
func RunFig4(cfSvc *CFService, searchSvc *SearchService, nRequests int) (*Fig4, error) {
	out := &Fig4{}
	// (a) Recommender: weights between active users and aggregated users.
	reqs := cfSvc.Data.SampleCFRequests(cfSvc.Scale.Seed^0xf4a, nRequests, 0.2)
	var secHit, secTotal [10]float64
	for i, spec := range reqs {
		comp := cfSvc.Comps[i%len(cfSvc.Comps)]
		req := cf.NewRequest(spec.Known, spec.Targets)
		corr := make([]float64, len(comp.Aggs))
		for g, ag := range comp.Aggs {
			corr[g] = math.Abs(cf.Weight(req.Ratings, ag.Ratings))
		}
		ranking := rankDesc(corr)
		for pos, g := range ranking {
			sec := pos * 10 / len(ranking)
			for _, u := range comp.Aggs[g].Members {
				w := cf.Weight(req.Ratings, comp.M.Ratings(u))
				secTotal[sec]++
				if w > 0.8 || w < -0.8 {
					secHit[sec]++
				}
			}
		}
	}
	for s := 0; s < 10; s++ {
		if secTotal[s] > 0 {
			out.SectionsCF[s] = 100 * secHit[s] / secTotal[s]
		}
	}
	out.RequestsCF = len(reqs)

	// (b) Search: aggregated-page ranking vs actual top-10 membership.
	queries := searchSvc.Data.SampleQueries(searchSvc.Scale.Seed^0xf4b, nRequests)
	var secTop [10]float64
	totalTop := 0.0
	for i, qs := range queries {
		comp := searchSvc.Comps[i%len(searchSvc.Comps)]
		q := comp.Ix.ParseQuery(qs)
		if len(q.Terms) == 0 {
			continue
		}
		actual := textindex.ExactTopK(comp, q, 10)
		if len(actual) == 0 {
			continue
		}
		top := make(map[int]bool, len(actual))
		for _, h := range actual {
			top[h.Doc] = true
		}
		corr := make([]float64, len(comp.Aggs))
		for g, ap := range comp.Aggs {
			corr[g] = ap.Score(comp.Ix, q)
		}
		ranking := rankDesc(corr)
		for pos, g := range ranking {
			sec := pos * 10 / len(ranking)
			for _, d := range comp.Aggs[g].Members {
				if top[d] {
					secTop[sec]++
					totalTop++
				}
			}
		}
	}
	if totalTop > 0 {
		for s := 0; s < 10; s++ {
			out.SectionsSearch[s] = 100 * secTop[s] / totalTop
		}
	}
	out.RequestsSearch = len(queries)
	return out, nil
}

func rankDesc(corr []float64) []int {
	ids := make([]int, len(corr))
	for i := range ids {
		ids[i] = i
	}
	for i := range ids {
		best := i
		for j := i + 1; j < len(ids); j++ {
			if corr[ids[j]] > corr[ids[best]] {
				best = j
			}
		}
		ids[i], ids[best] = ids[best], ids[i]
	}
	return ids
}

// TopSectionsShare returns the cumulative share (0..100) of the actual
// top-10 pages contained in the first k of the 10 ranked sections — the
// statistic behind the paper's imax=40% setting (top 4 sections hold
// >98%).
func (f *Fig4) TopSectionsShare(k int) float64 {
	s := 0.0
	for i := 0; i < k && i < 10; i++ {
		s += f.SectionsSearch[i]
	}
	return s
}

// Render prints the Figure 4 analogue.
func (f *Fig4) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIGURE 4. Identifying highly related original data points with synopses\n")
	fmt.Fprintf(&b, "(a) recommender, %d active users: %% of highly related users per ranked section\n", f.RequestsCF)
	writeSeries(&b, "section", sectionIdx())
	writeSeries(&b, "% highly related", f.SectionsCF[:])
	fmt.Fprintf(&b, "(b) search engine, %d queries: %% of actual top-10 pages per ranked section\n", f.RequestsSearch)
	writeSeries(&b, "section", sectionIdx())
	writeSeries(&b, "% of actual top-10", f.SectionsSearch[:])
	fmt.Fprintf(&b, "top-4 sections hold %.2f%% of the actual top-10 pages\n", f.TopSectionsShare(4))
	return b.String()
}

func sectionIdx() []float64 {
	out := make([]float64, 10)
	for i := range out {
		out[i] = float64(i + 1)
	}
	return out
}
