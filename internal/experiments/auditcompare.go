package experiments

import (
	"context"
	"fmt"
	"math"
	"net"
	"strings"
	"sync/atomic"
	"testing" // AllocsPerRun: the non-sampled hot-path zero-allocation guard
	"time"

	"accuracytrader/internal/agg"
	"accuracytrader/internal/audit"
	"accuracytrader/internal/frontend"
	"accuracytrader/internal/ingest"
	"accuracytrader/internal/netsvc"
	"accuracytrader/internal/obs"
	"accuracytrader/internal/service"
	"accuracytrader/internal/wire"
)

// The auditcompare experiment (observability extension, not a paper
// figure) validates the accuracy audit plane end to end on the real
// networked stack: a ground-truth auditor replaying answered requests
// at Exact class off the hot path, SLO burn-rate accounting, and
// tail-based trace retention. Five contracts are asserted —
//
//  1. zero cost when off: the disabled auditor and the non-sampled
//     hot path (auditing enabled, request not chosen) allocate nothing;
//  2. healthy calibration: with an honest accuracy table, the audited
//     CLT bound coverage sits at or above the nominal confidence;
//  3. bias detection: with a stale calibration table that over-claims
//     the coarse ladder levels, the auditor reports floor violations
//     within auditDetectK audited samples and pins the original traces;
//  4. drift safety: samples answered before an ingest-driven epoch
//     swap are skipped stale, never audited against newer data;
//  5. burn rates and retention: the SLO tracker's sliding windows
//     match a naive re-scanning reference exactly, and every
//     anomalous trace stays pinned while healthy traces rotate out.
const (
	// auditNominalConfidence is the CLT confidence the agg bounds claim
	// (z = 1.96): healthy coverage must not fall below it.
	auditNominalConfidence = 0.95
	// auditIMaxFrac caps Algorithm 1's improvement phase at one ranked
	// set so coarse-level answers stay genuinely approximate — with the
	// workload default (every set eligible) an unloaded backend improves
	// sampled strata all the way back to an exact scan, leaving the
	// auditor nothing to measure.
	auditIMaxFrac = 0.01
	// auditHealthyCalls / auditBiasCalls are the Bounded request counts
	// of the two calibration passes.
	auditHealthyCalls = 48
	auditBiasCalls    = 24
	// auditDetectK is the detection budget: a biased calibration must
	// surface as a floor violation within this many audited samples.
	auditDetectK = 10
	// auditHealthyFloor / auditBiasFloor are the Bounded accuracy
	// floors. The bias floor is chosen above the coarse levels' realized
	// accuracy, so a table that over-claims them turns every audited
	// sample into a violation.
	auditHealthyFloor = 0.85
	auditBiasFloor    = 0.95
	// auditBiasClaim is the stale table's inflated per-level accuracy
	// claim: every ladder level pretends to be near-exact, so the
	// controller routes Bounded traffic to the coarsest (cheapest) one.
	auditBiasClaim = 0.999
	// auditRetentionRing is the deliberately tiny trace ring of the
	// retention phase: healthy traffic must rotate anomalies out of it.
	auditRetentionRing = 8
	// auditDeadlineMs is the stamped service budget of the calibration
	// passes' Bounded requests (generous: no deadline pressure wanted).
	auditDeadlineMs = 250.0
)

// AuditCompare is the experiment result.
type AuditCompare struct {
	Servers int

	// Zero-cost contracts.
	DisabledAllocs   float64 // nil auditor: ShouldSample + Submit
	NotSampledAllocs float64 // live auditor, request not chosen
	RaceDetector     bool

	// Healthy pass (honest calibration).
	HealthyCalls    int
	HealthyAudited  int64
	HealthyCoverage float64 // bound coverage across all tables
	HealthyBounds   int64
	HealthyRealized float64 // mean realized accuracy
	HealthyClaimed  float64 // mean claimed accuracy
	HealthyViol     int64

	// Bias pass (stale calibration claiming near-exact coarse levels).
	BiasCalls    int
	BiasAudited  int64
	BiasViol     int64
	BiasDetectAt int64 // audited samples when the first violation surfaced
	BiasRealized float64
	BiasClaimed  float64
	BiasPinned   int // traces pinned as floor-violation anomalies

	// Drift pass (ingest-driven epoch swap under queued audits).
	DriftQueued      int
	DriftSkipped     int64
	DriftPostAudited int64
	DriftErr         string

	// Burn-rate windows vs the naive reference.
	BurnChecks     int
	BurnMismatches int

	// Tail retention.
	RetainAnomalous int   // degraded replies driven through the tiny ring
	RetainPinned    int   // of those, found in the exemplar store at the end
	RetainInRing    int   // of those, still in the live ring (want 0: rotated)
	RetainHealthy   int   // healthy rotation requests
	RetainSLODeg    int64 // degraded count in the 1h SLO window

	ZeroAllocOK bool
	CoverageOK  bool
	DetectOK    bool
	DriftOK     bool
	BurnOK      bool
	RetentionOK bool
}

// OK reports whether every asserted contract held.
func (ac *AuditCompare) OK() bool {
	return ac.ZeroAllocOK && ac.CoverageOK && ac.DetectOK && ac.DriftOK && ac.BurnOK && ac.RetentionOK
}

// RunAuditCompare runs the audit-plane validation at a scale.
func RunAuditCompare(sc Scale) (*AuditCompare, error) {
	svc, err := BuildAggService(sc)
	if err != nil {
		return nil, err
	}
	queries := svc.Data.SampleAggQueries(sc.Seed^0xa0d1, 16)
	levels := svc.Comps[0].Syn.Levels()
	honest := make([]float64, levels)
	biased := make([]float64, levels)
	for l := 0; l < levels; l++ {
		honest[l] = agg.MeasureLevelAccuracy(svc.Comps, queries, l)
		biased[l] = auditBiasClaim
	}

	ac := &AuditCompare{Servers: len(svc.Comps), RaceDetector: raceEnabled}

	// (1) Zero cost when off, and on the non-sampled hot path.
	var nilAuditor *audit.Auditor
	ac.DisabledAllocs = testing.AllocsPerRun(1000, func() {
		if nilAuditor.ShouldSample(12345) {
			nilAuditor.Submit(nil)
		}
	})
	probe, err := audit.New(audit.Config{
		SampleFraction: 1e-4, // nearly every ID takes the non-sampled path
		Replay:         func(context.Context, *audit.Sample) ([]float64, error) { return nil, nil },
	})
	if err != nil {
		return nil, err
	}
	var id uint64
	ac.NotSampledAllocs = testing.AllocsPerRun(1000, func() {
		id = id*2654435761 + 12345
		if probe.ShouldSample(id) {
			_ = id
		}
	})
	probe.Close()
	ac.ZeroAllocOK = (ac.DisabledAllocs == 0 && ac.NotSampledAllocs == 0) || raceEnabled

	// (2) Healthy pass: honest calibration, achievable floor.
	hp, err := runAuditedPass(svc, queries, honest, auditHealthyFloor, auditHealthyCalls, 0)
	if err != nil {
		return nil, err
	}
	ac.HealthyCalls = auditHealthyCalls
	ac.HealthyAudited = hp.stats.Audited
	ac.HealthyViol = hp.stats.Violations
	var covered, total int64
	var sumRealized, sumClaimed float64
	var samples int64
	for _, tv := range hp.tables {
		covered += tv.BoundsCovered
		total += tv.BoundsTotal
		sumRealized += tv.MeanRealized * float64(tv.Samples)
		sumClaimed += tv.MeanClaimed * float64(tv.Samples)
		samples += tv.Samples
	}
	ac.HealthyBounds = total
	if total > 0 {
		ac.HealthyCoverage = float64(covered) / float64(total)
	}
	if samples > 0 {
		ac.HealthyRealized = sumRealized / float64(samples)
		ac.HealthyClaimed = sumClaimed / float64(samples)
	}
	ac.CoverageOK = ac.HealthyAudited == int64(auditHealthyCalls) &&
		total > 0 && ac.HealthyCoverage >= auditNominalConfidence

	// (3) Bias pass: a stale table claims every level is near-exact, so
	// Bounded{auditBiasFloor} traffic lands on the coarsest level and
	// every audit measures realized accuracy far below both the claim
	// and the floor.
	bp, err := runAuditedPass(svc, queries, biased, auditBiasFloor, auditBiasCalls, auditDetectK)
	if err != nil {
		return nil, err
	}
	ac.BiasCalls = auditBiasCalls
	ac.BiasAudited = bp.stats.Audited
	ac.BiasViol = bp.stats.Violations
	ac.BiasDetectAt = bp.detectAt
	ac.BiasPinned = bp.pinnedFloor
	sumRealized, sumClaimed, samples = 0, 0, 0
	for _, tv := range bp.tables {
		sumRealized += tv.MeanRealized * float64(tv.Samples)
		sumClaimed += tv.MeanClaimed * float64(tv.Samples)
		samples += tv.Samples
	}
	if samples > 0 {
		ac.BiasRealized = sumRealized / float64(samples)
		ac.BiasClaimed = sumClaimed / float64(samples)
	}
	ac.DetectOK = ac.BiasViol > 0 &&
		ac.BiasDetectAt > 0 && ac.BiasDetectAt <= auditDetectK &&
		ac.BiasPinned == int(ac.BiasViol)

	// (4) Drift: audits queued across an ingest-driven epoch swap must
	// be skipped stale, and post-swap answers must audit normally.
	if err := ac.runDriftPhase(sc, svc); err != nil {
		ac.DriftErr = err.Error()
		ac.DriftOK = false
	}

	// (5a) Burn-rate windows vs a naive re-scanning reference.
	ac.runBurnPhase()

	// (5b) Tail retention: anomalies survive a tiny rotating ring.
	if err := ac.runRetentionPhase(svc); err != nil {
		return nil, err
	}
	return ac, nil
}

// auditPassResult carries one calibration pass's outcome.
type auditPassResult struct {
	stats       audit.Stats
	tables      []audit.TableView
	detectAt    int64 // audited samples when the first violation surfaced (0: never)
	pinnedFloor int   // exemplars carrying the floor-violation anomaly bit
}

// runAuditedPass builds a fresh audited loopback stack over the shared
// components — claimed per-level accuracy as given — drives `calls`
// Bounded requests at `floor`, waits for every audit to settle, and
// snapshots the auditor. detectK > 0 additionally waits for the
// verdict pins to land (the bias pass inspects them).
func runAuditedPass(svc *AggService, queries []agg.Query, levelAcc []float64, floor float64, calls, detectK int) (*auditPassResult, error) {
	n := len(svc.Comps)
	backend := netsvc.NewAggBackend(svc.Comps, netsvc.BackendOptions{IMaxFrac: auditIMaxFrac})
	var closers []func()
	defer func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		srv := netsvc.NewServer(backend, netsvc.ServerOptions{Workers: 1, QueueLen: 256})
		go srv.Serve(l)
		closers = append(closers, srv.Close)
		addrs[i] = l.Addr().String()
	}
	agr, err := netsvc.NewAggregator(addrs, netsvc.AggregatorOptions{Policy: service.WaitAll, Deadline: 2 * time.Second})
	if err != nil {
		return nil, err
	}
	closers = append(closers, agr.Close)
	if err := agr.WaitReady(5 * time.Second); err != nil {
		return nil, err
	}
	ctrl, err := frontend.NewController(frontend.ControllerConfig{Levels: len(levelAcc), LevelAccuracy: levelAcc})
	if err != nil {
		return nil, err
	}
	fe, err := frontend.New(agr, frontend.Options{Controller: ctrl})
	if err != nil {
		return nil, err
	}
	rec := obs.NewRecorder(2*calls, 32)
	fs := netsvc.NewFrontServer(agr, fe, netsvc.ServerOptions{Tracer: rec})
	fs.EnableSLO(obs.NewSLOTracker(obs.DefaultSLOBudgets()), nil)

	// detectAt records the audited-sample index of the first floor
	// violation — the "within K samples" detection-latency measurement.
	var audited, detectAt atomic.Int64
	auditor, err := fs.EnableAudit(audit.Config{
		SampleFraction: 1,
		Interval:       200 * time.Microsecond,
		Gate:           func() bool { return true }, // keep pacing deterministic at this load
		OnVerdict: func(_ *audit.Sample, v audit.Verdict) {
			i := audited.Add(1)
			if v.FloorViolated {
				detectAt.CompareAndSwap(0, i)
			}
		},
	})
	if err != nil {
		return nil, err
	}
	closers = append(closers, auditor.Close)
	fl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go fs.Serve(fl)
	closers = append(closers, fs.Close)
	cl, err := netsvc.DialClient(fl.Addr().String(), netsvc.ClientOptions{})
	if err != nil {
		return nil, err
	}
	closers = append(closers, func() { cl.Close() })

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 0; i < calls; i++ {
		q := queries[i%len(queries)]
		req := &wire.Request{
			Kind: wire.KindAgg, Subset: -1, SLO: wire.SLOBounded, Level: wire.NoLevel,
			MinAccuracy: floor,
			Deadline:    time.Now().Add(auditDeadlineMs * time.Millisecond).UnixNano(),
			Agg:         &wire.AggRequest{Op: uint8(q.Op), Lo: q.Lo, Hi: q.Hi},
		}
		rep, err := cl.Call(ctx, req)
		if err != nil {
			return nil, err
		}
		if rep.Status != wire.ReplyOK {
			return nil, fmt.Errorf("auditcompare: call %d status %d (%s)", i, rep.Status, rep.Err)
		}
	}
	if !auditor.Drain(20 * time.Second) {
		return nil, fmt.Errorf("auditcompare: auditor never drained: %+v", auditor.Stats())
	}
	res := &auditPassResult{stats: auditor.Stats(), tables: auditor.Tables()}

	// Drain returns once the counters balance; the final OnVerdict (and
	// its trace pin) may still be in flight on the worker. Poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for audited.Load() < res.stats.Audited && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	res.detectAt = detectAt.Load()
	if detectK > 0 {
		for time.Now().Before(deadline) {
			res.pinnedFloor = countPinned(rec, obs.AnomalyFloorViolation)
			if int64(res.pinnedFloor) >= res.stats.Violations {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
	return res, nil
}

// countPinned counts exemplars carrying the given anomaly bit.
func countPinned(rec *obs.Recorder, bit obs.AnomalyReason) int {
	n := 0
	for _, tv := range rec.Exemplars(0) {
		if tv.Anomaly&uint8(bit) != 0 {
			n++
		}
	}
	return n
}

// runDriftPhase stages the shared fact shards into live stores, queues
// audits behind a closed gate, swaps the data epoch through the ingest
// path, and asserts the queued samples are skipped stale while
// post-swap answers audit normally.
func (ac *AuditCompare) runDriftPhase(sc Scale, svc *AggService) error {
	const shards = 2
	const preSwap, postSwap = 3, 2
	var closers []func()
	defer func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}()
	lives := make([]*ingest.AggLive, shards)
	addrs := make([]string, shards)
	for i := 0; i < shards; i++ {
		tab := svc.Data.Subsets[i%len(svc.Data.Subsets)]
		keys := make([]int32, tab.NumRows())
		vals := make([]float64, tab.NumRows())
		for r := 0; r < tab.NumRows(); r++ {
			keys[r], vals[r] = tab.Key(r), tab.Value(r)
		}
		l := ingest.NewAggLive(tab.NumKeys(), sc.AggConfig())
		if _, err := l.Append(keys, vals); err != nil {
			return err
		}
		if _, _, _, err := l.Compact(); err != nil {
			return err
		}
		lives[i] = l
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		srv := netsvc.NewServer(netsvc.NewLiveAggBackend(lives[i:i+1], netsvc.BackendOptions{IMaxFrac: auditIMaxFrac}), netsvc.ServerOptions{Workers: 1})
		srv.SetIngest(netsvc.NewLiveIngestHandler(netsvc.LiveStores{Agg: lives[i : i+1]}))
		go srv.Serve(ln)
		closers = append(closers, srv.Close)
		addrs[i] = ln.Addr().String()
	}
	agr, err := netsvc.NewAggregator(addrs, netsvc.AggregatorOptions{Policy: service.WaitAll, Deadline: 2 * time.Second})
	if err != nil {
		return err
	}
	closers = append(closers, agr.Close)
	if err := agr.WaitReady(5 * time.Second); err != nil {
		return err
	}
	fs := netsvc.NewFrontServer(agr, nil, netsvc.ServerOptions{Tracer: obs.NewRecorder(32, 16)})
	fs.EnableIngest(0)
	var gateOpen atomic.Bool
	auditor, err := fs.EnableAudit(audit.Config{
		SampleFraction: 1,
		Interval:       200 * time.Microsecond,
		Gate:           gateOpen.Load,
	})
	if err != nil {
		return err
	}
	closers = append(closers, auditor.Close)
	fl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go fs.Serve(fl)
	closers = append(closers, fs.Close)
	cl, err := netsvc.DialClient(fl.Addr().String(), netsvc.ClientOptions{})
	if err != nil {
		return err
	}
	closers = append(closers, func() { cl.Close() })

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	call := func() error {
		req := &wire.Request{
			Kind: wire.KindAgg, Subset: -1, SLO: wire.SLOBounded, Level: 0,
			Agg: &wire.AggRequest{Op: uint8(agg.Sum), Lo: 0, Hi: math.Inf(1)},
		}
		rep, err := cl.Call(ctx, req)
		if err != nil {
			return err
		}
		if rep.Status != wire.ReplyOK {
			return fmt.Errorf("drift call status %d (%s)", rep.Status, rep.Err)
		}
		return nil
	}
	// Queue preSwap audits behind the closed gate.
	for i := 0; i < preSwap; i++ {
		if err := call(); err != nil {
			return err
		}
	}
	ac.DriftQueued = preSwap
	// Drift arrives through the write path: the append's acknowledgement
	// carries the staging epoch, which the front server folds in as an
	// observed swap — every queued sample is now stale.
	before := fs.DataEpoch()
	ack, err := cl.Ingest(ctx, &wire.IngestRequest{
		Kind: wire.KindAgg, Subset: 0,
		Agg: &wire.AggIngest{Keys: []int32{0, 1}, Vals: []float64{5, 7}},
	})
	if err != nil {
		return err
	}
	if ack.Status != wire.IngestOK {
		return fmt.Errorf("drift ingest status %d (%s)", ack.Status, ack.Err)
	}
	if fs.DataEpoch() == before {
		return fmt.Errorf("ingest ack (epoch %d) did not advance the observed data epoch %d", ack.Epoch, before)
	}
	gateOpen.Store(true)
	if !auditor.Drain(10 * time.Second) {
		return fmt.Errorf("drift drain: %+v", auditor.Stats())
	}
	st := auditor.Stats()
	ac.DriftSkipped = st.SkippedStale
	if st.Audited != 0 || st.SkippedStale != preSwap {
		return fmt.Errorf("pre-swap samples not skipped stale: %+v", st)
	}
	// Requests answered entirely after the swap audit normally.
	for i := 0; i < postSwap; i++ {
		if err := call(); err != nil {
			return err
		}
	}
	if !auditor.Drain(10 * time.Second) {
		return fmt.Errorf("post-swap drain: %+v", auditor.Stats())
	}
	st = auditor.Stats()
	ac.DriftPostAudited = st.Audited
	if st.Audited != postSwap {
		return fmt.Errorf("post-swap samples not audited: %+v", st)
	}
	if st.Sampled != st.Audited+st.SkippedStale+st.ReplayErrs+st.Dropped {
		return fmt.Errorf("audit accounting broken: %+v", st)
	}
	ac.DriftOK = true
	return nil
}

// burnWindow mirrors the tracker's published window geometry: 60
// buckets of gran seconds (1m/10m/1h at 1s/10s/60s granularity).
type burnWindow struct {
	name    string
	gran    int64
	buckets int64
}

var burnWindows = []burnWindow{{"1m", 1, 60}, {"10m", 10, 60}, {"1h", 60, 60}}

// runBurnPhase feeds one deterministic event stream to the SLO tracker
// (under a fake clock) and to a naive keep-everything reference, then
// compares every class x window count and burn rate.
func (ac *AuditCompare) runBurnPhase() {
	type ev struct {
		sec     int64
		class   uint8
		flags   obs.SLOFlags
		counted bool
	}
	base := time.Unix(1_750_000_000, 0)
	now := base
	budgets := obs.DefaultSLOBudgets()
	tr := obs.NewSLOTracker(budgets)
	tr.SetClock(func() time.Time { return now })
	var events []ev

	rng := uint64(0xb0a7)
	next := func(n uint64) uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng % n
	}
	at := base
	for i := 0; i < 3000; i++ {
		at = at.Add(time.Duration(next(3)) * time.Second)
		class := uint8(next(3))
		var flags obs.SLOFlags
		if next(100) < 2 {
			flags |= obs.SLODeadlineMiss
		}
		if next(100) < 8 {
			flags |= obs.SLODegraded
		}
		tr.RecordAt(at, class, "", flags)
		events = append(events, ev{at.Unix(), class, flags, true})
		if next(100) < 1 {
			// After-the-fact floor violation: counter only, no total.
			now = at
			tr.RecordFloorViolation(class, "")
			events = append(events, ev{at.Unix(), class, obs.SLOFloorViolation, false})
		}
	}
	now = at

	naive := func(class uint8, w burnWindow) (total, miss, floor, deg int64) {
		hi := at.Unix() / w.gran
		lo := hi - w.buckets + 1
		for _, e := range events {
			b := e.sec / w.gran
			if e.class != class || b < lo || b > hi {
				continue
			}
			if e.counted {
				total++
			}
			if e.flags&obs.SLODeadlineMiss != 0 {
				miss++
			}
			if e.flags&obs.SLOFloorViolation != 0 {
				floor++
			}
			if e.flags&obs.SLODegraded != 0 {
				deg++
			}
		}
		return
	}
	burnOf := func(bad, total int64, budget float64) float64 {
		if total == 0 || budget <= 0 {
			return 0
		}
		return float64(bad) / float64(total) / budget
	}
	for class := uint8(0); class < 3; class++ {
		for w, spec := range burnWindows {
			total, miss, floor, deg := tr.Window(class, w)
			nt, nm, nf, nd := naive(class, spec)
			ac.BurnChecks++
			if total != nt || miss != nm || floor != nf || deg != nd {
				ac.BurnMismatches++
				continue
			}
			for _, pair := range [][2]float64{
				{tr.BurnRate(class, obs.SLODeadlineMiss, w), burnOf(nm, nt, budgets.DeadlineMiss)},
				{tr.BurnRate(class, obs.SLOFloorViolation, w), burnOf(nf, nt, budgets.FloorViolation)},
				{tr.BurnRate(class, obs.SLODegraded, w), burnOf(nd, nt, budgets.Degraded)},
			} {
				if math.Abs(pair[0]-pair[1]) > 1e-9 {
					ac.BurnMismatches++
					break
				}
			}
		}
	}
	ac.BurnOK = ac.BurnChecks == 9 && ac.BurnMismatches == 0
}

// runRetentionPhase drives degraded replies through a deliberately tiny
// trace ring, then floods it with healthy traffic: the anomalies must
// survive in the exemplar store after rotating out of the ring.
func (ac *AuditCompare) runRetentionPhase(svc *AggService) error {
	const shards = 2
	const anomalous = 4
	var closers []func()
	defer func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}()
	inner := netsvc.NewAggBackend(svc.Comps, netsvc.BackendOptions{IMaxFrac: auditIMaxFrac})
	var lose atomic.Bool
	addrs := make([]string, shards)
	for i := 0; i < shards; i++ {
		handler := inner
		if i == 0 {
			// Fault injection on shard 0: while lose is set, its
			// sub-operations fail and BestEffort answers degrade.
			handler = func(ctx context.Context, req *wire.Request) *wire.SubReply {
				if lose.Load() {
					return &wire.SubReply{Status: wire.StatusErr, Err: "auditcompare: injected fault"}
				}
				return inner(ctx, req)
			}
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		srv := netsvc.NewServer(handler, netsvc.ServerOptions{Workers: 1})
		go srv.Serve(l)
		closers = append(closers, srv.Close)
		addrs[i] = l.Addr().String()
	}
	agr, err := netsvc.NewAggregator(addrs, netsvc.AggregatorOptions{Policy: service.WaitAll, Deadline: 2 * time.Second})
	if err != nil {
		return err
	}
	closers = append(closers, agr.Close)
	if err := agr.WaitReady(5 * time.Second); err != nil {
		return err
	}
	rec := obs.NewRecorder(auditRetentionRing, 16)
	slo := obs.NewSLOTracker(obs.DefaultSLOBudgets())
	fs := netsvc.NewFrontServer(agr, nil, netsvc.ServerOptions{Tracer: rec})
	fs.EnableSLO(slo, nil)
	fl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go fs.Serve(fl)
	closers = append(closers, fs.Close)
	cl, err := netsvc.DialClient(fl.Addr().String(), netsvc.ClientOptions{})
	if err != nil {
		return err
	}
	closers = append(closers, func() { cl.Close() })

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	call := func() (*wire.Reply, error) {
		req := &wire.Request{
			Kind: wire.KindAgg, Subset: -1, SLO: wire.SLOBestEffort, Level: wire.NoLevel,
			Agg: &wire.AggRequest{Op: uint8(agg.Sum), Lo: 0, Hi: math.Inf(1)},
		}
		rep, err := cl.Call(ctx, req)
		if err != nil {
			return nil, err
		}
		if rep.Status != wire.ReplyOK && rep.Status != wire.ReplyDegraded {
			return nil, fmt.Errorf("retention call status %d (%s)", rep.Status, rep.Err)
		}
		return rep, nil
	}

	// Degraded phase: shard 0 is down, BestEffort serves around it.
	lose.Store(true)
	anomalyIDs := make(map[uint64]bool, anomalous)
	for i := 0; i < anomalous; i++ {
		rep, err := call()
		if err != nil {
			return err
		}
		if !rep.Degraded && rep.Status != wire.ReplyDegraded {
			return fmt.Errorf("faulted reply not degraded: %+v", rep)
		}
		if rep.Trace == 0 {
			return fmt.Errorf("degraded reply carries no trace ID")
		}
		anomalyIDs[rep.Trace] = true
	}
	lose.Store(false)
	ac.RetainAnomalous = len(anomalyIDs)

	// Healthy flood: 3x the ring, rotating the anomalies out of it.
	ac.RetainHealthy = 3 * auditRetentionRing
	for i := 0; i < ac.RetainHealthy; i++ {
		if _, err := call(); err != nil {
			return err
		}
	}
	for _, tv := range rec.Snapshot(0) {
		if anomalyIDs[tv.ID] {
			ac.RetainInRing++
		}
	}
	for _, tv := range rec.Exemplars(0) {
		if anomalyIDs[tv.ID] && tv.Anomaly&uint8(obs.AnomalyDegraded) != 0 {
			ac.RetainPinned++
		}
	}
	_, _, _, deg := slo.Window(wire.SLOBestEffort, 2)
	ac.RetainSLODeg = deg
	ac.RetentionOK = ac.RetainAnomalous == anomalous &&
		ac.RetainPinned == anomalous &&
		ac.RetainInRing == 0 &&
		ac.RetainSLODeg == int64(anomalous)
	return nil
}

// Render formats the validation report.
func (ac *AuditCompare) Render() string {
	var b strings.Builder
	mark := func(v bool) string {
		if v {
			return "ok"
		}
		return "FAIL"
	}
	fmt.Fprintf(&b, "AUDITCOMPARE: accuracy audit plane over loopback TCP (%d component servers)\n\n", ac.Servers)
	if ac.RaceDetector {
		fmt.Fprintf(&b, "  zero-cost   %-4s  disabled %.1f allocs/op, non-sampled %.1f allocs/op (informational under -race)\n",
			mark(ac.ZeroAllocOK), ac.DisabledAllocs, ac.NotSampledAllocs)
	} else {
		fmt.Fprintf(&b, "  zero-cost   %-4s  disabled %.1f allocs/op, non-sampled hot path %.1f allocs/op (want 0)\n",
			mark(ac.ZeroAllocOK), ac.DisabledAllocs, ac.NotSampledAllocs)
	}
	fmt.Fprintf(&b, "  calibration %-4s  honest table: %d/%d audited, bound coverage %.3f over %d bounds (nominal %.2f), realized %.3f vs claimed %.3f, %d floor violations\n",
		mark(ac.CoverageOK), ac.HealthyAudited, ac.HealthyCalls, ac.HealthyCoverage, ac.HealthyBounds,
		auditNominalConfidence, ac.HealthyRealized, ac.HealthyClaimed, ac.HealthyViol)
	fmt.Fprintf(&b, "  detection   %-4s  stale table claiming %.3f: %d/%d audits violated the %.2f floor, first at audit #%d (budget %d), %d traces pinned\n",
		mark(ac.DetectOK), auditBiasClaim, ac.BiasViol, ac.BiasAudited, auditBiasFloor, ac.BiasDetectAt, auditDetectK, ac.BiasPinned)
	fmt.Fprintf(&b, "              realized %.3f vs claimed %.3f: the audit gap IS the staleness\n", ac.BiasRealized, ac.BiasClaimed)
	if ac.DriftErr != "" {
		fmt.Fprintf(&b, "  drift       FAIL  %s\n", ac.DriftErr)
	} else {
		fmt.Fprintf(&b, "  drift       %-4s  %d audits queued across an ingest epoch swap: %d skipped stale, %d post-swap audited\n",
			mark(ac.DriftOK), ac.DriftQueued, ac.DriftSkipped, ac.DriftPostAudited)
	}
	fmt.Fprintf(&b, "  burn rates  %-4s  %d class x window checks against the naive reference, %d mismatches\n",
		mark(ac.BurnOK), ac.BurnChecks, ac.BurnMismatches)
	fmt.Fprintf(&b, "  retention   %-4s  %d degraded replies through a %d-slot ring + %d healthy: %d pinned as exemplars, %d left in ring (want 0), SLO degraded %d\n",
		mark(ac.RetentionOK), ac.RetainAnomalous, auditRetentionRing, ac.RetainHealthy,
		ac.RetainPinned, ac.RetainInRing, ac.RetainSLODeg)

	b.WriteString("\nReading: the auditor replays a sampled fraction of answered requests at Exact class, off the hot\n")
	b.WriteString("path and gated on foreground load, so ground truth is measured continuously without touching\n")
	b.WriteString("tail latency. A healthy calibration shows CLT bound coverage at or above the nominal confidence;\n")
	b.WriteString("a stale table shows up as a realized-vs-claimed gap and floor violations within a handful of\n")
	b.WriteString("audited samples — long before users could report it. The epoch guard keeps the measurement\n")
	b.WriteString("honest under live ingest (never audit yesterday's answer against today's data), and anomalous\n")
	b.WriteString("traces are pinned outside the rotating ring so the request that violated its floor an hour ago\n")
	b.WriteString("is still inspectable at /traces?filter=anomaly.\n")
	return b.String()
}

// auditMismatchGapFloor is the minimum claimed-minus-realized gap the
// bias pass must demonstrate for the staleness story to hold — at
// least the runtime's mismatch-pinning slack, so the gap is large
// enough to pin traces as audit mismatches.
const auditMismatchGapFloor = 0.05
