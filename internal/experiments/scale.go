package experiments

// Scale holds every size knob of the reproduction.
type Scale struct {
	// Components is the simulated fan-out width (paper: 108).
	Components int
	// Shards is the number of distinct real data subsets backing the
	// components (component c serves shard c mod Shards). Set equal to
	// Components for full fidelity at higher build cost.
	Shards int

	// CF data shape.
	UsersPerSubset int
	Items          int

	// Search data shape.
	DocsPerSubset int

	// Aggregation data shape (the third workload, internal/agg).
	FactRowsPerSubset int
	FactKeys          int

	// SessionSeconds is the measured window per arrival rate (Tables 1-2)
	// and per hour (Figures 5-8).
	SessionSeconds float64
	// AccuracySamples is the number of requests replayed for accuracy per
	// run.
	AccuracySamples int

	// DeadlineMs is l_spe (paper: 100 ms).
	DeadlineMs float64
	// CompressionRatio is the synopsis target (paper: ~100x in points;
	// scaled with subset size).
	CompressionRatio int

	// SearchPeakRate is the busiest-hour arrival rate (req/s) of the
	// diurnal search workload; calibrated so daytime hours run the exact
	// techniques past saturation, as in the paper's Figures 5-8.
	SearchPeakRate float64
	// HourWindowSeconds is the simulated continuous window representing
	// one hour in Figures 5-6 (the hour's rate profile is time-warped
	// onto it; 60 per-minute bins are reported).
	HourWindowSeconds float64
	// DayWindowSeconds is the per-hour window used by the 24-hour
	// Figures 7-8.
	DayWindowSeconds float64

	Seed uint64
}

// DefaultScale is the laptop-scale configuration used by cmd/attrader:
// full 108-component fan-out over 12 real shards, 30-second sessions.
func DefaultScale() Scale {
	return Scale{
		Components:        108,
		Shards:            12,
		UsersPerSubset:    400,
		Items:             200,
		DocsPerSubset:     400,
		FactRowsPerSubset: 4000,
		FactKeys:          48,
		SessionSeconds:    30,
		AccuracySamples:   120,
		DeadlineMs:        100,
		CompressionRatio:  8,
		SearchPeakRate:    90,
		HourWindowSeconds: 240,
		DayWindowSeconds:  60,
		Seed:              1,
	}
}

// QuickScale is the reduced configuration used by unit tests and
// benchmarks: small enough for tight edit-test loops while preserving
// every qualitative behaviour.
func QuickScale() Scale {
	return Scale{
		Components:        16,
		Shards:            4,
		UsersPerSubset:    200,
		Items:             120,
		DocsPerSubset:     160,
		FactRowsPerSubset: 2000,
		FactKeys:          24,
		SessionSeconds:    8,
		AccuracySamples:   30,
		DeadlineMs:        100,
		CompressionRatio:  8,
		SearchPeakRate:    90,
		HourWindowSeconds: 48,
		DayWindowSeconds:  15,
		Seed:              1,
	}
}

// fullScanMs is the calibrated cost of one exact subset scan at speed 1.
// It anchors the simulation to the paper's light-load component latencies
// (Table 1, rate 20: tens of milliseconds) independent of the scaled
// subset size: one work unit is one original data point scanned, and the
// per-unit cost is fullScanMs divided by the subset's point count.
const fullScanMs = 15.0

// cfUnitCostMs returns the per-user scan cost for the CF service.
func (s Scale) cfUnitCostMs() float64 { return fullScanMs / float64(s.UsersPerSubset) }

// searchUnitCostMs returns the per-page scan cost for the search service.
func (s Scale) searchUnitCostMs() float64 { return fullScanMs / float64(s.DocsPerSubset) }

// aggUnitCostMs returns the per-row scan cost for the aggregation
// service.
func (s Scale) aggUnitCostMs() float64 { return fullScanMs / float64(s.FactRowsPerSubset) }
