package experiments

import (
	"context"
	"fmt"
	"math"
	"net"
	"strings"
	"testing" // AllocsPerRun: the live-snapshot read-path zero-allocation guard
	"time"

	"accuracytrader/internal/agg"
	"accuracytrader/internal/ingest"
	"accuracytrader/internal/netsvc"
	"accuracytrader/internal/rescache"
	"accuracytrader/internal/service"
	"accuracytrader/internal/wire"
	"accuracytrader/internal/workload"
)

// The ingestcompare experiment (online-updates extension, not a paper
// figure) validates the live synopsis-update path — append-only delta
// segments over a frozen base, epoch-swapped snapshots, periodic merge
// worker — against the frozen rebuilds the paper's offline pipeline
// produces, and pins the contracts that make streaming ingestion safe
// to serve from:
//
//  1. sampling honesty: while rows stream into every shard under
//     running merge workers, the merged service answer at the finest
//     ladder level clears the Bounded accuracy floor — self-calibrated
//     per probe as min(0.90, accuracy of the same pinned frozen bases)
//     since per-query frozen accuracy varies around the calibrated
//     mean — so streaming never costs accuracy the frozen system had:
//     the exactly-scanned delta can only tighten estimates, never
//     loosen them;
//  2. bit-identity: at every probed compacted epoch, the live store's
//     answers (exact and at every ladder level) are bit-identical to a
//     from-scratch frozen build over the same row prefix — reservoir
//     maintenance loses nothing an offline rebuild would keep;
//  3. cache coherence: epoch swaps bump the result-cache epoch and
//     re-warm hot entries; no lookup ever serves an answer computed
//     from pre-swap data as current (zero stale serves);
//  4. zero read-path cost: Snapshot + QueryLevel on a live store
//     allocates nothing once pools are warm;
//  5. wire: a v5 append batch travels client → front server →
//     component, is acknowledged with its staging epoch, and becomes
//     visible to exact queries after the next swap.
const (
	// ingestFloor is the Bounded-class accuracy floor probed during
	// streaming, merged across shards the way the service composes
	// answers. The finest ladder level is calibrated so its MEAN
	// accuracy clears 0.90 (see Scale.aggConfig); individual queries
	// scatter around that mean, so each probe's effective floor is
	// min(ingestFloor, frozen-baseline accuracy of the same pinned
	// bases) — live must clear the absolute floor wherever frozen
	// does, and must never be less accurate than frozen anywhere.
	ingestFloor = 0.90
	// ingestBatchRows is the per-shard append batch size of the
	// streaming phase.
	ingestBatchRows = 50
	// ingestIdentityProbes is how many compacted epochs are rebuilt from
	// scratch and compared bit for bit.
	ingestIdentityProbes = 5
	// ingestCacheRounds is the number of swap+lookup rounds of the cache
	// coherence phase; ingestCacheHot the hot-key working set.
	ingestCacheRounds = 6
	ingestCacheHot    = 8
)

// IngestCompare is the full experiment result.
type IngestCompare struct {
	Shards       int
	NumKeys      int
	RowsPerShard int // rows streamed into each live shard over phases 1-2
	RowsSeeded   int // rows staged+compacted per shard before the workers started
	FinestLevel  int
	Floor        float64
	RaceDetector bool // allocation phase informational-only under -race

	// Streaming phase (merge workers running on every shard).
	Batches      int // per-shard append batches
	FloorChecks  int // merged-answer probes against the floor
	FloorViol    int
	MeanAcc      float64
	MinAcc       float64
	BaselineMean float64 // frozen-base accuracy over the same pinned snapshots
	BaselineMin  float64
	Publishes    uint64 // worker epoch swaps that exposed a new delta (all shards)
	Compactions  uint64 // worker base rebuilds (all shards)
	MaxLagMs     float64

	// Bit-identity phase (manual compactions, frozen rebuild per probe).
	IdentityProbes int
	IdentityViol   int
	ProbedEpochs   []uint64

	// Cache-coherence phase.
	CacheRounds int
	CacheHits   int
	CacheMisses int
	StaleServes int
	Rewarms     int64

	// Read-path allocation phase.
	ReadAllocs  float64
	ZeroAllocOK bool

	// Wire phase (loopback TCP).
	WireOK        bool
	WireErr       string
	WireAccepted  uint32
	WireEpoch     uint64
	WireVisibleMs float64
}

// Violations sums every pinned-contract breach: floor violations while
// streaming, bit-identity mismatches, and stale cache serves.
func (ic *IngestCompare) Violations() int {
	return ic.FloorViol + ic.IdentityViol + ic.StaleServes
}

// ingestIdentical reports whether two results are bit-identical across
// every accumulator column.
func ingestIdentical(a, b agg.Result) bool {
	for k := range a.Sum {
		if a.Sum[k] != b.Sum[k] || a.Cnt[k] != b.Cnt[k] ||
			a.SumVar[k] != b.SumVar[k] || a.CntVar[k] != b.CntVar[k] {
			return false
		}
	}
	return true
}

// RunIngestCompare runs the streaming-ingestion validation sweep.
func RunIngestCompare(sc Scale) (*IngestCompare, error) {
	shards := sc.Shards
	if shards < 2 {
		shards = 2
	}
	fcfg := workload.DefaultFactsConfig()
	// Twice the scale's rows per shard, so the seeded half equals the
	// per-shard table size the accuracy ladder is calibrated on — the
	// floor probe then starts from exactly the calibrated setup and the
	// exactly-folded stream can only tighten it.
	fcfg.RowsPerSubset = sc.FactRowsPerSubset * 2
	fcfg.Keys = sc.FactKeys
	fcfg.Seed = sc.Seed
	data := workload.GenerateFacts(fcfg, shards)
	cfg := sc.AggConfig()

	// The row streams: every shard's deterministic fact table, replayed
	// in arrival order. Half seeds each base, three-tenths streams under
	// the workers, shard 0's last fifth feeds the identity probes.
	total := data.Subsets[0].NumRows()
	seeded := total / 2
	streamEnd := seeded + total*3/10
	keysBy := make([][]int32, shards)
	valsBy := make([][]float64, shards)
	for i, tab := range data.Subsets {
		keysBy[i] = make([]int32, tab.NumRows())
		valsBy[i] = make([]float64, tab.NumRows())
		for r := 0; r < tab.NumRows(); r++ {
			keysBy[i][r], valsBy[i][r] = tab.Key(r), tab.Value(r)
		}
	}

	nq := 4
	if sc.AccuracySamples < 12 {
		nq = 3
	}
	queries := data.SampleAggQueries(sc.Seed^0x1e57, nq)

	ic := &IngestCompare{
		Shards:       shards,
		NumKeys:      sc.FactKeys,
		RowsPerShard: total,
		RowsSeeded:   seeded,
		Floor:        ingestFloor,
		MinAcc:       1,
		RaceDetector: raceEnabled,
		CacheRounds:  ingestCacheRounds,
	}

	lives := make([]*ingest.AggLive, shards)
	for i := 0; i < shards; i++ {
		lives[i] = ingest.NewAggLive(sc.FactKeys, cfg)
		if _, err := lives[i].Append(keysBy[i][:seeded], valsBy[i][:seeded]); err != nil {
			return nil, err
		}
		if _, _, _, err := lives[i].Compact(); err != nil {
			return nil, err
		}
	}
	{
		snap, _ := lives[0].Snapshot()
		ic.FinestLevel = snap.Base().Syn.Levels() - 1
	}

	// Phase 1 — streaming under merge workers: the workers own all
	// publishing; this goroutine appends to every shard and probes the
	// merged service answer over one pinned snapshot per shard, exactly
	// how the aggregator composes — so concurrent swaps cannot skew the
	// comparison and the floor is the service-level Bounded contract.
	workers := make([]*ingest.Worker, shards)
	for i := range lives {
		workers[i] = ingest.NewWorker(lives[i], ingest.WorkerOptions{Interval: time.Millisecond, CompactEvery: 16, Name: "agg"})
	}
	mergedLvl, mergedEx := agg.NewResult(sc.FactKeys), agg.NewResult(sc.FactKeys)
	baseLvl, baseEx := agg.NewResult(sc.FactKeys), agg.NewResult(sc.FactKeys)
	var scratch agg.Result
	var estL, estE, estBL, estBE []float64
	snaps := make([]*ingest.AggSnapshot, shards)
	accSum, baseSum, accCnt := 0.0, 0.0, 0
	ic.BaselineMin = 1
	for at := seeded; at < streamEnd; at += ingestBatchRows {
		hi := at + ingestBatchRows
		if hi > streamEnd {
			hi = streamEnd
		}
		for i := range lives {
			if _, err := lives[i].Append(keysBy[i][at:hi], valsBy[i][at:hi]); err != nil {
				return nil, err
			}
		}
		ic.Batches++
		for i := range lives {
			snaps[i], _ = lives[i].Snapshot()
		}
		for _, q := range queries {
			mergedLvl = mergedLvl.Reset(sc.FactKeys)
			mergedEx = mergedEx.Reset(sc.FactKeys)
			baseLvl = baseLvl.Reset(sc.FactKeys)
			baseEx = baseEx.Reset(sc.FactKeys)
			for _, snap := range snaps {
				scratch = snap.QueryLevel(scratch, q, ic.FinestLevel)
				mergedLvl.Merge(scratch)
				scratch = snap.Exact(scratch, q)
				mergedEx.Merge(scratch)
				// The frozen baseline: the same pinned bases without the
				// delta fold — what an offline rebuild at the last
				// compaction would answer.
				c := snap.Base()
				e := agg.GetEngine(c, q, ic.FinestLevel)
				e.ProcessSynopsis()
				baseLvl.Merge(e.Result())
				e.Release()
				scratch = agg.ExactResultInto(scratch, c, q)
				baseEx.Merge(scratch)
			}
			estL = mergedLvl.EstimatesInto(estL, q.Op)
			estE = mergedEx.EstimatesInto(estE, q.Op)
			estBL = baseLvl.EstimatesInto(estBL, q.Op)
			estBE = baseEx.EstimatesInto(estBE, q.Op)
			acc := agg.Accuracy(estL, estE)
			baseAcc := agg.Accuracy(estBL, estBE)
			ic.FloorChecks++
			accSum += acc
			baseSum += baseAcc
			accCnt++
			if acc < ic.MinAcc {
				ic.MinAcc = acc
			}
			if baseAcc < ic.BaselineMin {
				ic.BaselineMin = baseAcc
			}
			floor := ingestFloor
			if f := baseAcc - 1e-9; f < floor {
				floor = f
			}
			if acc < floor {
				ic.FloorViol++
			}
		}
	}
	for i := range workers {
		workers[i].Close()
		ws := workers[i].Stats()
		ic.Publishes += ws.Publishes
		ic.Compactions += ws.Compactions
		if lag := float64(ws.MaxLag) / float64(time.Millisecond); lag > ic.MaxLagMs {
			ic.MaxLagMs = lag
		}
	}
	if accCnt > 0 {
		ic.MeanAcc = accSum / float64(accCnt)
		ic.BaselineMean = baseSum / float64(accCnt)
	}

	// Phase 2 — bit-identity at compacted epochs: with the workers gone
	// this goroutine is shard 0's single publisher; every probe appends,
	// compacts, then rebuilds a frozen snapshot over the same row prefix
	// from scratch and compares exact plus every ladder level bit for
	// bit.
	l := lives[0]
	probeRows := (total - streamEnd) / ingestIdentityProbes
	at := streamEnd
	reb1, reb2 := agg.NewResult(sc.FactKeys), agg.NewResult(sc.FactKeys)
	for p := 0; p < ingestIdentityProbes; p++ {
		hi := at + probeRows
		if p == ingestIdentityProbes-1 {
			hi = total
		}
		if _, err := l.Append(keysBy[0][at:hi], valsBy[0][at:hi]); err != nil {
			return nil, err
		}
		at = hi
		if _, _, _, err := l.Compact(); err != nil {
			return nil, err
		}
		snap, epoch := l.Snapshot()
		if snap.DeltaRows() != 0 || snap.Rows() != hi {
			ic.IdentityViol++
			continue
		}
		rebuilt, err := ingest.BuildAggSnapshot(sc.FactKeys, cfg, keysBy[0][:hi], valsBy[0][:hi])
		if err != nil {
			return nil, err
		}
		ic.IdentityProbes++
		ic.ProbedEpochs = append(ic.ProbedEpochs, epoch)
		for _, q := range queries {
			reb1 = snap.Exact(reb1, q)
			reb2 = rebuilt.Exact(reb2, q)
			if !ingestIdentical(reb1, reb2) {
				ic.IdentityViol++
			}
			for lvl := 0; lvl <= ic.FinestLevel; lvl++ {
				reb1 = snap.QueryLevel(reb1, q, lvl)
				reb2 = rebuilt.QueryLevel(reb2, q, lvl)
				if !ingestIdentical(reb1, reb2) {
					ic.IdentityViol++
				}
			}
		}
	}

	// Phase 3 — cache coherence across swaps: cached values record the
	// live epoch they were computed at; after each swap bumps the cache
	// epoch and re-warms the hot set, a hit carrying a pre-swap epoch
	// would be a stale serve.
	cache, err := rescache.New(rescache.Config{Capacity: 64, RefreshBelow: 0.01, RefreshInterval: time.Hour})
	if err != nil {
		return nil, err
	}
	defer cache.Close()
	cache.SetRefresh(func(key uint64, payload interface{}) (interface{}, float64, bool) {
		_, ep := l.Snapshot()
		return ep, 1, true
	}, nil)
	{
		_, ep := l.Snapshot()
		for k := uint64(1); k <= ingestCacheHot; k++ {
			cache.Store(k, "live-query", ep, 1)
		}
	}
	lastSwap := l.Epoch()
	cacheAt := 0
	for round := 0; round < ingestCacheRounds; round++ {
		// A small deterministic append, re-using the head of the stream.
		n := 8
		if _, err := l.Append(keysBy[0][cacheAt:cacheAt+n], valsBy[0][cacheAt:cacheAt+n]); err != nil {
			return nil, err
		}
		cacheAt += n
		epoch, moved, _ := l.PublishDelta()
		if moved > 0 {
			lastSwap = epoch
			cache.BumpEpoch()
			cache.RewarmHot(ingestCacheHot)
		}
		for k := uint64(1); k <= ingestCacheHot; k++ {
			v, _, ok := cache.Get(k, 0)
			if !ok {
				ic.CacheMisses++
				continue
			}
			ic.CacheHits++
			if ep, _ := v.(uint64); ep < lastSwap {
				ic.StaleServes++
			}
		}
	}
	ic.Rewarms = cache.Stats().Rewarms

	// Phase 4 — the live read path must be allocation-free once warm:
	// one atomic snapshot load, one pooled engine over the base, one
	// linear delta fold into reused buffers. The race detector
	// randomizes sync.Pool reuse, so the assertion is waived (but still
	// measured) under -race.
	res := agg.NewResult(sc.FactKeys)
	q0 := queries[0]
	for i := 0; i < 8; i++ {
		snap, _ := l.Snapshot()
		res = snap.QueryLevel(res, q0, ic.FinestLevel)
	}
	ic.ReadAllocs = testing.AllocsPerRun(200, func() {
		snap, _ := l.Snapshot()
		res = snap.QueryLevel(res, q0, ic.FinestLevel)
	})
	ic.ZeroAllocOK = ic.ReadAllocs == 0 || raceEnabled

	// Phase 5 — the wire: a v5 append batch through client → front
	// server → component over loopback TCP, visible to exact queries
	// after the next swap.
	if err := ic.runWirePhase(data, cfg); err != nil {
		ic.WireErr = err.Error()
	} else {
		ic.WireOK = true
	}
	return ic, nil
}

// runWirePhase drives the loopback-TCP smoke: two live component
// servers with merge workers, an aggregator, an ingest-enabled front
// server, and a client appending one batch then polling exact queries
// until the rows land.
func (ic *IngestCompare) runWirePhase(data *workload.FactsData, cfg agg.Config) error {
	const shards = 2
	lives := make([]*ingest.AggLive, shards)
	addrs := make([]string, shards)
	var closers []func()
	defer func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}()
	for i := 0; i < shards; i++ {
		tab := data.Subsets[i]
		keys := make([]int32, tab.NumRows())
		vals := make([]float64, tab.NumRows())
		for r := 0; r < tab.NumRows(); r++ {
			keys[r], vals[r] = tab.Key(r), tab.Value(r)
		}
		l := ingest.NewAggLive(tab.NumKeys(), cfg)
		if _, err := l.Append(keys, vals); err != nil {
			return err
		}
		if _, _, _, err := l.Compact(); err != nil {
			return err
		}
		lives[i] = l
		w := ingest.NewWorker(l, ingest.WorkerOptions{Interval: time.Millisecond, CompactEvery: 16})
		closers = append(closers, w.Close)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		addrs[i] = ln.Addr().String()
		srv := netsvc.NewServer(netsvc.NewLiveAggBackend(lives[i:i+1], netsvc.BackendOptions{}), netsvc.ServerOptions{Workers: 2})
		srv.SetIngest(netsvc.NewLiveIngestHandler(netsvc.LiveStores{Agg: lives[i : i+1]}))
		go srv.Serve(ln)
		closers = append(closers, srv.Close)
	}
	agr, err := netsvc.NewAggregator(addrs, netsvc.AggregatorOptions{Policy: service.WaitAll, Deadline: 2 * time.Second})
	if err != nil {
		return err
	}
	closers = append(closers, agr.Close)
	if err := agr.WaitReady(5 * time.Second); err != nil {
		return err
	}
	fl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	fs := netsvc.NewFrontServer(agr, nil, netsvc.ServerOptions{Workers: 8})
	fs.EnableIngest(ingestCacheHot)
	go fs.Serve(fl)
	closers = append(closers, fs.Close)
	cl, err := netsvc.DialClient(fl.Addr().String(), netsvc.ClientOptions{})
	if err != nil {
		return err
	}
	closers = append(closers, cl.Close)

	// Expected composed exact answer after the append: the two shards'
	// pinned snapshots plus the batch.
	q := agg.Query{Op: agg.Sum, Lo: 0, Hi: math.Inf(1)}
	want := agg.NewResult(data.Subsets[0].NumKeys())
	var scratch agg.Result
	for _, l := range lives {
		snap, _ := l.Snapshot()
		scratch = snap.Exact(scratch, q)
		want.Merge(scratch)
	}
	batch := &wire.AggIngest{Keys: []int32{0, 1, 0}, Vals: []float64{10, 20, 30}}
	for i, k := range batch.Keys {
		want.Sum[k] += batch.Vals[i]
		want.Cnt[k]++
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	t0 := time.Now()
	ack, err := cl.Ingest(ctx, &wire.IngestRequest{Kind: wire.KindAgg, Subset: 0, Agg: batch})
	if err != nil {
		return err
	}
	if ack.Status != wire.IngestOK || ack.Accepted != uint32(len(batch.Keys)) {
		return fmt.Errorf("ingest ack status %d accepted %d (err %q)", ack.Status, ack.Accepted, ack.Err)
	}
	ic.WireAccepted, ic.WireEpoch = ack.Accepted, ack.Epoch

	req := &wire.Request{
		Kind: wire.KindAgg, Subset: -1, SLO: wire.SLOExact, Level: wire.NoLevel,
		Agg: &wire.AggRequest{Op: uint8(q.Op), Lo: q.Lo, Hi: q.Hi},
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		rep, err := cl.Call(ctx, req)
		if err != nil {
			return err
		}
		if rep.Status != wire.ReplyOK {
			return fmt.Errorf("exact query status %d err %q", rep.Status, rep.Err)
		}
		got := netsvc.AggResultOf(rep.Agg)
		match := true
		for k := range want.Sum {
			if got.Sum[k] != want.Sum[k] || got.Cnt[k] != want.Cnt[k] {
				match = false
				break
			}
		}
		if match {
			ic.WireVisibleMs = float64(time.Since(t0)) / float64(time.Millisecond)
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("appended batch never became visible to exact queries")
		}
		time.Sleep(time.Millisecond)
	}
}

// Render formats the sweep as a text report.
func (ic *IngestCompare) Render() string {
	var b strings.Builder
	mark := func(ok bool) string {
		if ok {
			return "ok"
		}
		return "FAIL"
	}
	fmt.Fprintf(&b, "INGESTCOMPARE: live synopsis updates vs frozen rebuilds (epoch-swapped streaming ingestion)\n")
	fmt.Fprintf(&b, "(%d live shards, %d-key domain, %d rows/shard: %d seeded+compacted, then streamed in %d-row\n",
		ic.Shards, ic.NumKeys, ic.RowsPerShard, ic.RowsSeeded, ingestBatchRows)
	fmt.Fprintf(&b, " batches under 1 ms merge workers; finest ladder level %d; Bounded floor %.2f on the merged answer)\n\n",
		ic.FinestLevel, ic.Floor)

	fmt.Fprintf(&b, "streaming:    %3d batches/shard, %d worker publishes + %d compactions, worst freshness lag %.1f ms\n",
		ic.Batches, ic.Publishes, ic.Compactions, ic.MaxLagMs)
	fmt.Fprintf(&b, "  floor:      %3d probed merged answers, live accuracy mean %.3f min %.3f vs frozen baseline mean %.3f\n",
		ic.FloorChecks, ic.MeanAcc, ic.MinAcc, ic.BaselineMean)
	fmt.Fprintf(&b, "              min %.3f; effective floor min(%.2f, frozen) -> %d violations (%s)\n",
		ic.BaselineMin, ic.Floor, ic.FloorViol, mark(ic.FloorViol == 0))
	fmt.Fprintf(&b, "bit-identity: %3d compacted epochs probed %v, exact + every level vs from-scratch rebuild -> %d mismatches (%s)\n",
		ic.IdentityProbes, ic.ProbedEpochs, ic.IdentityViol, mark(ic.IdentityViol == 0 && ic.IdentityProbes == ingestIdentityProbes))
	fmt.Fprintf(&b, "cache:        %3d swap rounds, %d hits / %d misses, %d re-warms -> %d stale serves (%s)\n",
		ic.CacheRounds, ic.CacheHits, ic.CacheMisses, ic.Rewarms, ic.StaleServes, mark(ic.StaleServes == 0))
	if ic.RaceDetector {
		fmt.Fprintf(&b, "read path:    %.1f allocs/op (informational: race detector randomizes pool reuse)\n", ic.ReadAllocs)
	} else {
		fmt.Fprintf(&b, "read path:    %.1f allocs/op on Snapshot+QueryLevel, want 0 (%s)\n", ic.ReadAllocs, mark(ic.ZeroAllocOK))
	}
	if ic.WireOK {
		fmt.Fprintf(&b, "wire:         v5 append acked (accepted %d, staged at epoch %d), visible to exact queries in %.1f ms (ok)\n",
			ic.WireAccepted, ic.WireEpoch, ic.WireVisibleMs)
	} else {
		fmt.Fprintf(&b, "wire:         FAIL: %s\n", ic.WireErr)
	}
	fmt.Fprintf(&b, "\ncontract violations: %d (want 0)\n", ic.Violations())

	b.WriteString("\nReading: the delta segment is scanned exactly, so between compactions a live answer is the frozen\n")
	b.WriteString("base's stratified estimate plus a zero-variance fold of the new rows — accuracy can only tighten,\n")
	b.WriteString("which is why the Bounded floor holds at every probe while rows stream in. Compaction re-ranks each\n")
	b.WriteString("stratum by the deterministic per-row sampling priority, so a compacted live store is bit-identical\n")
	b.WriteString("to a frozen rebuild over the same rows: the online path changes freshness, never the statistics.\n")
	return b.String()
}
