package experiments

import (
	"fmt"
	"strings"
	"time"

	"accuracytrader/internal/cf"
	"accuracytrader/internal/textindex"
	"accuracytrader/internal/workload"
)

// CreationReport is the §4.2 "overheads of synopsis creation" evaluation:
// per-step timings for one subset of each service, plus the aggregation
// statistics the paper reports (mean original points per aggregated
// point).
type CreationReport struct {
	CFPoints        int
	CFRatings       int
	CFStep1Ms       float64 // incremental SVD
	CFStep2Ms       float64 // R-tree build + cut
	CFStep3Ms       float64 // information aggregation
	CFGroups        int
	CFMeanGroupSize float64

	SearchPoints        int
	SearchStep1Ms       float64
	SearchStep2Ms       float64
	SearchStep3Ms       float64
	SearchGroups        int
	SearchMeanGroupSize float64
}

// RunCreation builds one subset of each service and reports the per-step
// creation overheads.
func RunCreation(sc Scale) (*CreationReport, error) {
	rep := &CreationReport{}

	rcfg := workload.DefaultRatingsConfig()
	rcfg.UsersPerSubset = sc.UsersPerSubset
	rcfg.Items = sc.Items
	rcfg.Seed = sc.Seed
	m := workload.GenerateRatings(rcfg, 1).Subsets[0]
	t0 := time.Now()
	cfComp, err := cf.BuildComponent(m, sc.synopsisConfig())
	if err != nil {
		return nil, err
	}
	totalCF := float64(time.Since(t0)) / float64(time.Millisecond)
	tm := cfComp.Syn.Timings()
	rep.CFPoints = m.NumUsers()
	rep.CFRatings = m.NumRatings()
	rep.CFStep1Ms = tm.SVDMs
	rep.CFStep2Ms = tm.TreeMs
	rep.CFStep3Ms = totalCF - tm.SVDMs - tm.TreeMs
	rep.CFGroups = len(cfComp.Aggs)
	rep.CFMeanGroupSize = cfComp.Syn.MeanGroupSize()

	ccfg := workload.DefaultCorpusConfig()
	ccfg.DocsPerSubset = sc.DocsPerSubset
	ccfg.Seed = sc.Seed
	ix := workload.GenerateCorpus(ccfg, 1).Subsets[0]
	t1 := time.Now()
	sComp, err := textindex.BuildComponent(ix, sc.synopsisConfig())
	if err != nil {
		return nil, err
	}
	totalS := float64(time.Since(t1)) / float64(time.Millisecond)
	stm := sComp.Syn.Timings()
	rep.SearchPoints = ix.NumDocs()
	rep.SearchStep1Ms = stm.SVDMs
	rep.SearchStep2Ms = stm.TreeMs
	rep.SearchStep3Ms = totalS - stm.SVDMs - stm.TreeMs
	rep.SearchGroups = len(sComp.Aggs)
	rep.SearchMeanGroupSize = sComp.Syn.MeanGroupSize()
	return rep, nil
}

// Render prints the creation-overhead report.
func (r *CreationReport) Render() string {
	var b strings.Builder
	b.WriteString("SYNOPSIS CREATION OVERHEADS (one subset per service)\n")
	fmt.Fprintf(&b, "%-34s%14s%14s\n", "", "recommender", "search")
	row := func(name string, a, c float64) {
		fmt.Fprintf(&b, "%-34s%14.1f%14.1f\n", name, a, c)
	}
	fmt.Fprintf(&b, "%-34s%14d%14d\n", "data points in subset", r.CFPoints, r.SearchPoints)
	row("step 1: incremental SVD (ms)", r.CFStep1Ms, r.SearchStep1Ms)
	row("step 2: R-tree construction (ms)", r.CFStep2Ms, r.SearchStep2Ms)
	row("step 3: information aggregation (ms)", r.CFStep3Ms, r.SearchStep3Ms)
	fmt.Fprintf(&b, "%-34s%14d%14d\n", "aggregated points (groups)", r.CFGroups, r.SearchGroups)
	row("original points per aggregated", r.CFMeanGroupSize, r.SearchMeanGroupSize)
	return b.String()
}

// Headline summarizes the paper's §4.3 closing claims from the Table 1-2
// and Figure 7-8 runs: tail-latency reduction vs request reissue under
// load (with AccuracyTrader's own accuracy loss), and accuracy-loss
// reduction vs partial execution at the same service latency.
type Headline struct {
	CFTailReductionVsReissue     float64
	CFATLoss                     float64
	CFLossReductionVsPartial     float64
	SearchTailReductionVsReissue float64
	SearchATLoss                 float64
	SearchLossReductionVsPartial float64
}

// ComputeHeadline derives the headline numbers. Heavy-load cells are
// those where the exact techniques run past saturation: rates >= 60 for
// the CF runs, hours with arrival rate >= 60% of peak for the day runs.
func ComputeHeadline(cfc *CFComparison, day *DayFigures, peakRate float64) *Headline {
	h := &Headline{}
	var tailRatio, atLoss, lossRatio ratioAcc
	for i, rate := range cfc.Rates {
		if rate < 60 {
			continue
		}
		tailRatio.add(cfc.ReissueTail[i], cfc.ATTail[i])
		atLoss.addVal(cfc.ATLoss[i])
		lossRatio.add(cfc.PartialLoss[i], cfc.ATLoss[i])
	}
	h.CFTailReductionVsReissue = tailRatio.ratio()
	h.CFATLoss = atLoss.mean()
	h.CFLossReductionVsPartial = lossRatio.ratio()

	var sTail, sLoss, sRatio ratioAcc
	for hour := 0; hour < 24; hour++ {
		if day.HourRate[hour] < 0.6*peakRate {
			continue
		}
		sTail.add(day.ReissueTail[hour], day.ATTail[hour])
		sLoss.addVal(day.ATLoss[hour])
		sRatio.add(day.PartialLoss[hour], day.ATLoss[hour])
	}
	h.SearchTailReductionVsReissue = sTail.ratio()
	h.SearchATLoss = sLoss.mean()
	h.SearchLossReductionVsPartial = sRatio.ratio()
	return h
}

// ratioAcc averages numerators and denominators separately, which keeps
// the ratio stable when individual denominators approach zero.
type ratioAcc struct {
	num, den float64
	sum      float64
	n        int
}

func (r *ratioAcc) add(num, den float64) {
	r.num += num
	r.den += den
	r.n++
}

func (r *ratioAcc) addVal(v float64) {
	r.sum += v
	r.n++
}

func (r *ratioAcc) ratio() float64 {
	if r.den == 0 {
		return 0
	}
	return r.num / r.den
}

func (r *ratioAcc) mean() float64 {
	if r.n == 0 {
		return 0
	}
	return r.sum / float64(r.n)
}

// Render prints the headline summary.
func (h *Headline) Render() string {
	var b strings.Builder
	b.WriteString("HEADLINE RESULTS (heavy-load aggregate, paper §4.3 'Results')\n")
	fmt.Fprintf(&b, "CF recommender workloads:\n")
	fmt.Fprintf(&b, "  tail latency reduction vs request reissue: %.1fx (AccuracyTrader loss %.2f%%)\n",
		h.CFTailReductionVsReissue, h.CFATLoss)
	fmt.Fprintf(&b, "  accuracy-loss reduction vs partial execution at equal latency: %.1fx\n",
		h.CFLossReductionVsPartial)
	fmt.Fprintf(&b, "Search engine workloads:\n")
	fmt.Fprintf(&b, "  tail latency reduction vs request reissue: %.1fx (AccuracyTrader loss %.2f%%)\n",
		h.SearchTailReductionVsReissue, h.SearchATLoss)
	fmt.Fprintf(&b, "  accuracy-loss reduction vs partial execution at equal latency: %.1fx\n",
		h.SearchLossReductionVsPartial)
	return b.String()
}
