package experiments

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"accuracytrader/internal/agg"
	"accuracytrader/internal/frontend"
	"accuracytrader/internal/netsvc"
	"accuracytrader/internal/rescache"
	"accuracytrader/internal/service"
	"accuracytrader/internal/stats"
	"accuracytrader/internal/wire"
)

// The cachecompare experiment (result-cache extension, not a paper
// figure) evaluates internal/rescache on the aggregation workload over
// the in-process runtime: an open-loop load whose query popularity is
// Zipf-distributed — the production shape in which most requests
// repeat — drives the frontend once without and once with the
// accuracy-tagged result cache, at several skew exponents, offered
// above the no-cache saturation rate. Reported per row: cache hit
// rate, goodput, p50/p99.9 call latency, shed fraction, measured
// per-class delivered accuracy, Bounded-floor violations among hits
// (must be zero — the cache-hit rule is `cached accuracy >= request
// floor`), and coalescing/refresh counters. A separate deterministic
// phase fires N concurrent identical requests at a cold cache and
// counts backend fan-outs (must be one: singleflight coalescing).
const (
	// ccDeadlineMs is the service deadline the goodput criterion uses.
	ccDeadlineMs = 50.0
	// ccRateFrac is the offered rate as a fraction of one component's
	// finest-synopsis saturation rate. With the improvement cap
	// (ccIMaxFrac) the real per-request cost is synopsis + capped
	// improvement, so this offered rate sits *above* the no-cache
	// service capacity — the no-cache rows queue persistently — while a
	// warm cache at skew >= 1 absorbs enough repeats to bring the
	// backend back below saturation.
	ccRateFrac = 0.75
	// ccWindowFrac is the window per row as a fraction of
	// Scale.SessionSeconds.
	ccWindowFrac = 0.25
	// ccWarmupFrac is the leading fraction of each row's window whose
	// requests run but are not recorded: both configurations pay the
	// same cold start (empty queues, cold cache), and the reported
	// numbers are steady-state.
	ccWarmupFrac = 0.25
	// ccIMaxFrac caps Algorithm 1 improvement at the top fraction of
	// ranked strata (the paper's imax), keeping approximate answers
	// genuinely approximate so the accuracy ladder has texture.
	ccIMaxFrac = 0.4
	// ccQuerySupport is the distinct-query population size; the Zipf
	// skew decides how concentrated traffic is on its head.
	ccQuerySupport = 160
	// ccCacheCapacity bounds the cache well below the query support, so
	// the hit rate is a genuine function of skew (an oversized cache
	// would hit ~always after warmup at any skew).
	ccCacheCapacity = 48
	// ccCallTimeoutMs bounds WaitAll calls so overload queueing cannot
	// wedge the load generator.
	ccCallTimeoutMs = 400.0
	// ccSubBudgetFrac is the component-side l_spe as a fraction of the
	// deadline.
	ccSubBudgetFrac = 0.8
	// ccCoalesceFanIn is the concurrent identical request count of the
	// coalescing check.
	ccCoalesceFanIn = 24
)

// ccSkews are the Zipf exponents swept, low to high.
var ccSkews = []float64{0.4, 1.0, 1.4}

// CacheRow is one measured configuration at one skew.
type CacheRow struct {
	Skew    float64
	Cached  bool
	Calls   int // offered requests
	HitPct  float64
	Goodput float64
	P50Ms   float64
	P999Ms  float64
	ShedPct float64
	MeanAcc float64 // mean measured delivered accuracy over answered requests
	// ClassAcc[k] is the mean measured accuracy of class k (indexed by
	// frontend.SLOKind) over answered requests.
	ClassAcc [3]float64
	// FloorViolations counts cache hits served to a Bounded request
	// whose recorded accuracy was below the request's floor. The hit
	// rule makes this impossible; the experiment proves it.
	FloorViolations int
	Coalesced       int64
	Refreshes       int64

	classCnt  [3]int
	accCnt    int
	good      int
	rejected  int
	latencies []float64
}

// CacheCompare is the full experiment result.
type CacheCompare struct {
	Servers       int
	DeadlineMs    float64
	RatePerSec    float64
	WindowSeconds float64
	QuerySupport  int
	CacheCapacity int
	LevelAccuracy []float64

	// The deterministic coalescing check: FanIn concurrent identical
	// requests at a cold cache must trigger exactly one backend
	// fan-out, with the rest sharing it.
	CoalesceFanIn    int
	CoalesceComputes int
	CoalesceShared   int64

	Rows []*CacheRow
}

// Row returns the row at one skew with/without the cache (nil if none).
func (cc *CacheCompare) Row(skew float64, cached bool) *CacheRow {
	for _, r := range cc.Rows {
		if r.Skew == skew && r.Cached == cached {
			return r
		}
	}
	return nil
}

// record folds one answered request into the row.
func (row *CacheRow) record(latMs float64, kind frontend.SLOKind, acc float64) {
	row.latencies = append(row.latencies, latMs)
	row.ClassAcc[kind] += acc
	row.classCnt[kind]++
	row.MeanAcc += acc
	row.accCnt++
	if latMs <= goodLatencyFactor*ccDeadlineMs && acc >= goodAccuracyFloor {
		row.good++
	}
}

// finish converts accumulators into the reported statistics.
func (row *CacheRow) finish(windowSec float64, hits int64) {
	row.Goodput = float64(row.good) / windowSec
	row.P50Ms = stats.Percentile(row.latencies, 50)
	row.P999Ms = stats.Percentile(row.latencies, 99.9)
	if row.accCnt > 0 {
		row.MeanAcc /= float64(row.accCnt)
	}
	for k := range row.ClassAcc {
		if row.classCnt[k] > 0 {
			row.ClassAcc[k] /= float64(row.classCnt[k])
		}
	}
	if row.Calls > 0 {
		row.ShedPct = 100 * float64(row.rejected) / float64(row.Calls)
		row.HitPct = 100 * float64(hits) / float64(row.Calls)
	}
	row.latencies = nil
}

// ccTemplates builds one canonical whole-service request per query.
// All arrivals of a query share the template pointer, so its canonical
// cache key — and the payload the refresh worker recomputes from — is
// stable across the run.
func ccTemplates(queries []agg.Query) []*wire.Request {
	out := make([]*wire.Request, len(queries))
	for i, q := range queries {
		out[i] = &wire.Request{
			Kind: wire.KindAgg, Subset: -1, SLO: wire.SLONone, Level: wire.NoLevel,
			Agg: &wire.AggRequest{Op: uint8(q.Op), Lo: q.Lo, Hi: q.Hi},
		}
	}
	return out
}

// ccCacheKey keys payloads on their canonical wire encoding.
func ccCacheKey(payload interface{}) (uint64, bool) {
	req, ok := payload.(*wire.Request)
	if !ok {
		return 0, false
	}
	return rescache.Key(wire.AppendCanonicalKey(nil, req)), true
}

// ccHandlers wraps the aggregation backend into per-subset cluster
// handlers that read the frontend-selected SLO class and ladder level
// from the context (the same translation netsvc.Aggregator performs on
// the wire).
func ccHandlers(comps []*agg.Component, backend netsvc.Handler, subCalls *atomic.Int64) []service.Handler {
	n := len(comps)
	handlers := make([]service.Handler, n)
	for i := 0; i < n; i++ {
		subset := i
		handlers[i] = func(ctx context.Context, payload interface{}) (interface{}, error) {
			req, ok := payload.(*wire.Request)
			if !ok {
				return nil, fmt.Errorf("experiments: payload must be *wire.Request, got %T", payload)
			}
			if subCalls != nil {
				subCalls.Add(1)
			}
			sub := *req
			sub.Seq = req.ID
			sub.Subset = int32(subset)
			if slo, ok := frontend.SLOFrom(ctx); ok {
				sub.SLO, sub.MinAccuracy = uint8(slo.Kind), slo.MinAccuracy
			}
			if lv, ok := frontend.LevelFrom(ctx); ok {
				sub.Level = int16(lv)
			}
			return backend(ctx, &sub), nil
		}
	}
	return handlers
}

// ccFrontend assembles the standard pipeline for one row: fresh
// admission, routing and controller state, plus the cache when cached.
func ccFrontend(cl *service.Cluster, n int, levelAcc []float64, cache *rescache.Cache) (*frontend.Frontend, error) {
	ctrl, err := frontend.NewController(frontend.ControllerConfig{
		Levels:             len(levelAcc),
		LevelAccuracy:      levelAcc,
		InflightSaturation: 6 * n,
	})
	if err != nil {
		return nil, err
	}
	opts := frontend.Options{
		Replicas: 2,
		Router:   frontend.NewLeastLoaded(),
		Admission: []frontend.AdmissionPolicy{
			frontend.NewMaxInflight(6 * n),
			frontend.NewQueueWatermark(0.35, 0.85),
		},
		Controller: ctrl,
	}
	if cache != nil {
		opts.Cache = cache
		opts.CacheKey = ccCacheKey
		opts.CacheRefresh = true
	}
	return frontend.New(cl, opts)
}

// RunCacheCompare measures the result cache against the no-cache
// frontend across Zipf skews.
func RunCacheCompare(sc Scale) (*CacheCompare, error) {
	svc, err := BuildAggService(sc)
	if err != nil {
		return nil, err
	}
	comps := svc.Comps
	n := len(comps)
	unitMs := sc.aggUnitCostMs()
	unitCost := time.Duration(unitMs * float64(time.Millisecond))

	// Query population with precomputed exact merged estimates (the
	// accuracy references) and calibrated per-level accuracy.
	queries := svc.Data.SampleAggQueries(sc.Seed^0xca4e, ccQuerySupport)
	nKeys := comps[0].T.NumKeys()
	exactEst := make([][]float64, len(queries))
	exact := agg.NewResult(nKeys)
	var scratch agg.Result
	for qi, q := range queries {
		exact = exact.Reset(nKeys)
		for _, c := range comps {
			scratch = agg.ExactResultInto(scratch, c, q)
			exact.Merge(scratch)
		}
		exactEst[qi] = exact.Estimates(q.Op)
	}
	calib := queries
	if len(calib) > 40 {
		calib = calib[:40]
	}
	levels := comps[0].Syn.Levels()
	levelAcc := make([]float64, levels)
	for l := 0; l < levels; l++ {
		levelAcc[l] = agg.MeasureLevelAccuracy(comps, calib, l)
	}

	finestUnits := 0.0
	for _, c := range comps {
		finestUnits += float64(c.Syn.SampleUnits(levels - 1))
	}
	finestUnits /= float64(n)
	satRate := 1000 / (finestUnits * unitMs)
	window := time.Duration(sc.SessionSeconds * ccWindowFrac * float64(time.Second))

	cc := &CacheCompare{
		Servers:       n,
		DeadlineMs:    ccDeadlineMs,
		RatePerSec:    ccRateFrac * satRate,
		WindowSeconds: window.Seconds(),
		QuerySupport:  len(queries),
		CacheCapacity: ccCacheCapacity,
		LevelAccuracy: levelAcc,
		CoalesceFanIn: ccCoalesceFanIn,
	}

	backend := netsvc.NewAggBackend(comps, netsvc.BackendOptions{
		UnitCost:  unitCost,
		SubBudget: time.Duration(ccSubBudgetFrac * ccDeadlineMs * float64(time.Millisecond)),
		IMaxFrac:  ccIMaxFrac,
	})
	templates := ccTemplates(queries)

	for si, skew := range ccSkews {
		// One request→query schedule per skew, shared by the cached and
		// uncached rows so they face identical traffic.
		zrng := stats.NewRNG(sc.Seed ^ (0x51b0 + uint64(si)))
		zipf := stats.NewZipf(zrng, len(queries), skew)
		qis := make([]int, 16384)
		for i := range qis {
			qis[i] = zipf.Draw()
		}
		for _, cached := range []bool{false, true} {
			row, err := cc.runRow(sc, skew, cached, comps, backend, templates, queries, exactEst, levelAcc, qis, uint64(si))
			if err != nil {
				return nil, err
			}
			cc.Rows = append(cc.Rows, row)
		}
	}
	if err := cc.runCoalesceCheck(comps, levelAcc); err != nil {
		return nil, err
	}
	return cc, nil
}

// runRow measures one (skew, cached?) configuration.
func (cc *CacheCompare) runRow(sc Scale, skew float64, cached bool, comps []*agg.Component,
	backend netsvc.Handler, templates []*wire.Request, queries []agg.Query, exactEst [][]float64,
	levelAcc []float64, qis []int, salt uint64) (*CacheRow, error) {
	n := len(comps)
	cl, err := service.New(ccHandlers(comps, backend, nil), service.WaitAll, service.Options{
		Deadline: time.Duration(ccCallTimeoutMs * float64(time.Millisecond)),
	})
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	var cache *rescache.Cache
	if cached {
		cache, err = rescache.New(rescache.Config{
			Capacity:        ccCacheCapacity,
			BestEffortFloor: 0.6,
			MaxSlack:        0.6,
			RefreshBelow:    0.99,
			RefreshInterval: 10 * time.Millisecond,
		})
		if err != nil {
			return nil, err
		}
		defer cache.Close()
	}
	fe, err := ccFrontend(cl, n, levelAcc, cache)
	if err != nil {
		return nil, err
	}

	row := &CacheRow{Skew: skew, Cached: cached}
	var mu sync.Mutex
	var hits int64
	measured := 0
	window := time.Duration(cc.WindowSeconds * float64(time.Second))
	warmup := time.Duration(ccWarmupFrac * float64(window))
	rowStart := time.Now()
	rng := stats.NewRNG(sc.Seed ^ (0xcc01 + salt)) // same arrivals for both rows of a skew
	netsvc.OpenLoop(rng, cc.RatePerSec, window, func(r int) {
		qi := qis[r%len(qis)]
		slo := overloadClassMix(r)
		t0 := time.Now()
		inWarmup := t0.Sub(rowStart) < warmup
		res, err := fe.Call(context.Background(), templates[qi], slo)
		latMs := float64(time.Since(t0)) / float64(time.Millisecond)
		// Floor violations are checked over the whole run — warmup hits
		// must honor the contract too.
		mu.Lock()
		defer mu.Unlock()
		if err == nil && res.FromCache && slo.Kind == frontend.Bounded &&
			res.EstimatedAccuracy < slo.MinAccuracy-1e-9 {
			row.FloorViolations++
		}
		if inWarmup {
			return
		}
		measured++
		if err != nil {
			if errors.Is(err, frontend.ErrRejected) {
				row.rejected++
			}
			return
		}
		if res.FromCache {
			hits++
		}
		row.record(latMs, slo.Kind, netAccuracy(res.Sub, queries[qi].Op, exactEst[qi]))
	})
	row.Calls = measured
	if cache != nil {
		cst := cache.Stats()
		row.Coalesced = cst.Coalesced
		row.Refreshes = cst.Refreshes
	}
	row.finish((1-ccWarmupFrac)*cc.WindowSeconds, hits)
	return row, nil
}

// runCoalesceCheck fires FanIn concurrent identical requests at a cold
// cache behind an idle frontend and counts backend fan-outs: the
// singleflight must collapse them to one.
func (cc *CacheCompare) runCoalesceCheck(comps []*agg.Component, levelAcc []float64) error {
	n := len(comps)
	release := make(chan struct{})
	var subCalls atomic.Int64
	gated := func(ctx context.Context, req *wire.Request) *wire.SubReply {
		<-release
		return &wire.SubReply{Status: wire.StatusOK, Level: wire.NoLevel,
			Agg: &wire.AggResult{Sum: make([]float64, 1), Cnt: make([]float64, 1),
				SumVar: make([]float64, 1), CntVar: make([]float64, 1)}}
	}
	cl, err := service.New(ccHandlers(comps, gated, &subCalls), service.WaitAll,
		service.Options{Deadline: 10 * time.Second})
	if err != nil {
		return err
	}
	defer cl.Close()
	cache, err := rescache.New(rescache.Config{Capacity: ccCacheCapacity})
	if err != nil {
		return err
	}
	defer cache.Close()
	fe, err := ccFrontend(cl, n, levelAcc, cache)
	if err != nil {
		return err
	}
	tmpl := &wire.Request{Kind: wire.KindAgg, Subset: -1, SLO: wire.SLONone, Level: wire.NoLevel,
		Agg: &wire.AggRequest{Op: uint8(agg.Sum), Lo: 0, Hi: 1}}
	var wg sync.WaitGroup
	var errOnce sync.Once
	var callErr error
	for i := 0; i < ccCoalesceFanIn; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := fe.Call(context.Background(), tmpl, frontend.BoundedSLO(0.5)); err != nil {
				errOnce.Do(func() { callErr = err })
			}
		}()
	}
	// Give every goroutine time to reach the flight (the winner is
	// parked in the gated handler), then let the computation finish.
	deadline := time.Now().Add(5 * time.Second)
	for fe.Stats().Admitted == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	if callErr != nil {
		return callErr
	}
	cc.CoalesceComputes = int(subCalls.Load()) / n
	// Shared = flight joins plus hits on the freshly stored entry (a
	// goroutine scheduled after the winner completed); both mean the
	// request was answered by the one computation.
	cst := cache.Stats()
	cc.CoalesceShared = cst.Coalesced + cst.Hits
	return nil
}

// Render formats the comparison as a paper-style text table.
func (cc *CacheCompare) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CACHECOMPARE: accuracy-aware result cache (internal/rescache) vs no-cache frontend\n")
	fmt.Fprintf(&b, "(aggregation workload, in-process runtime, %d components; open-loop %.1f req/s — above the no-cache\n",
		cc.Servers, cc.RatePerSec)
	fmt.Fprintf(&b, " improvement-capped capacity — for %.1fs per row, first %.0f%% discarded as warmup; %d distinct\n",
		cc.WindowSeconds, 100*ccWarmupFrac, cc.QuerySupport)
	fmt.Fprintf(&b, " queries, cache capacity %d; deadline %.0f ms;\n", cc.CacheCapacity, cc.DeadlineMs)
	fmt.Fprintf(&b, " goodput = answered <= %.1fx deadline with measured accuracy >= %.2f; class mix %s)\n\n",
		goodLatencyFactor, goodAccuracyFloor, overloadClassMixLabel)
	fmt.Fprintf(&b, "calibrated ladder accuracy (coarse->fine):")
	for _, a := range cc.LevelAccuracy {
		fmt.Fprintf(&b, " %.3f", a)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "coalescing check: %d concurrent identical misses -> %d backend fan-out(s), %d shared\n\n",
		cc.CoalesceFanIn, cc.CoalesceComputes, cc.CoalesceShared)
	fmt.Fprintf(&b, "  %-5s %-8s %6s %6s %10s %8s %8s %6s %8s %9s %10s %10s %9s %7s %8s\n",
		"skew", "config", "calls", "hit%", "goodput/s", "p50 ms", "p99.9", "shed%", "acc",
		"accExact", "accBounded", "accBestEff", "floorViol", "coal", "refresh")
	for _, r := range cc.Rows {
		cfg := "nocache"
		if r.Cached {
			cfg = "cache"
		}
		fmt.Fprintf(&b, "  %-5.1f %-8s %6d %6.1f %10.1f %8.1f %8.1f %6.1f %8.3f %9.3f %10.3f %10.3f %9d %7d %8d\n",
			r.Skew, cfg, r.Calls, r.HitPct, r.Goodput, r.P50Ms, r.P999Ms, r.ShedPct, r.MeanAcc,
			r.ClassAcc[frontend.Exact], r.ClassAcc[frontend.Bounded], r.ClassAcc[frontend.BestEffort],
			r.FloorViolations, r.Coalesced, r.Refreshes)
	}
	b.WriteString("\nReading: past saturation the no-cache rows queue — p99.9 blows through the deadline and admission\n")
	b.WriteString("sheds — while cache hits (whose rate grows with skew) bypass admission and the fan-out entirely,\n")
	b.WriteString("relieving the backend so even misses queue less: p99.9 drops and goodput rises at skew >= 1.\n")
	b.WriteString("floorViol counts Bounded-class hits below their floor and must be 0: the hit rule is\n")
	b.WriteString("`cached accuracy >= request floor` with Bounded floors never loosened; under load only the\n")
	b.WriteString("BestEffort floor slackens, and the low-priority refresh worker upgrades popular coarse entries\n")
	b.WriteString("to exact as capacity allows (refresh column).\n")
	return b.String()
}
