package experiments

import (
	"strings"
	"testing"
)

// TestFaultCompareQuick runs the kill/stall/heal sweep at quick scale
// and pins the failure-domain contracts: zero degradation-contract
// violations anywhere in the sweep, BestEffort availability at least
// (N-1)/N of healthy under 1-of-N loss, breakers re-closing within the
// probe budget after each heal, and a zero-allocation no-fault path.
func TestFaultCompareQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback fault-injection sweep: seconds of injected stalls")
	}
	fc, err := RunFaultCompare(QuickScale())
	if err != nil {
		t.Fatal(err)
	}

	if v := fc.Violations(); v != 0 {
		t.Errorf("degradation contract violations = %d, want 0\n%s", v, fc.Render())
	}

	healthy := fc.Phase("healthy")
	if healthy == nil {
		t.Fatal("missing healthy phase")
	}
	floor := float64(fc.Servers-1) / float64(fc.Servers) * healthy.AnsweredFrac(faultClassBestEffort)
	for _, name := range []string{"crash comp0", "stall comp0"} {
		p := fc.Phase(name)
		if p == nil {
			t.Fatalf("missing phase %q", name)
		}
		if got := p.AnsweredFrac(faultClassBestEffort); got < floor {
			t.Errorf("%s: BestEffort answered fraction %.3f < (N-1)/N of healthy (%.3f)", name, got, floor)
		}
	}

	// Both heals must have re-closed the breaker via the background
	// prober within the probe budget (RunFaultCompare errors out past a
	// hard 4x ceiling; the soft budget is asserted here).
	if len(fc.RecloseMs) != 2 {
		t.Fatalf("reclose measurements = %v, want one per heal", fc.RecloseMs)
	}
	for i, ms := range fc.RecloseMs {
		if ms > faultRecloseBudgetMs {
			t.Errorf("heal %d: breaker took %.1f ms to re-close, budget %.0f ms", i+1, ms, faultRecloseBudgetMs)
		}
	}

	if fc.BreakerOpens == 0 {
		t.Error("breaker never opened across a crash and a stall")
	}
	if !fc.ZeroAllocOK {
		t.Errorf("no-fault path allocates %.1f allocs/op, want 0", fc.NoFaultAllocs)
	}

	// Every call resolves to exactly one outcome; transport errors would
	// mean the (unfaulted) front server itself wobbled.
	for _, p := range fc.Phases {
		accounted := p.Unavailable + p.Errors
		for _, a := range p.Answered {
			accounted += a
		}
		if accounted != p.Calls {
			t.Errorf("phase %q: %d outcomes for %d calls", p.Name, accounted, p.Calls)
		}
		if p.Errors > 0 {
			t.Errorf("phase %q: %d transport/server errors", p.Name, p.Errors)
		}
	}

	out := fc.Render()
	for _, want := range []string{"FAULTCOMPARE", "breaker", "violations", "no-fault path"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
