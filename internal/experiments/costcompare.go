package experiments

import (
	"context"
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"testing" // AllocsPerRun: the cost-off zero-allocation guard
	"time"

	"accuracytrader/internal/agg"
	"accuracytrader/internal/cost"
	"accuracytrader/internal/netsvc"
	"accuracytrader/internal/obs"
	"accuracytrader/internal/service"
	"accuracytrader/internal/wire"
)

// The costcompare experiment (observability extension, not a paper
// figure) validates the cost attribution plane end to end on the real
// networked stack: per-request resource accounts folded from component
// span costs, a sharded per-(tenant, class, workload, level) table,
// the accuracy-vs-cost frontier joined from measured accuracy, and the
// anomaly-triggered profiler. Five contracts are asserted —
//
//  1. zero cost when off: with no account on the context, the serving
//     path's accounting calls allocate nothing and no-op;
//  2. cost conservation: summed child costs (component exec + queue
//     time) explain a bounded, nonzero share of the parent requests'
//     wall time — neither vanishing nor exceeding the fan-out width;
//  3. tenant attribution: per-(tenant, level) rows sum to the global
//     totals exactly — the same integers feed both sides, so metering
//     is lossless, not approximately reconciled;
//  4. frontier monotonicity: joining the measured per-level scan costs
//     with measured per-level accuracy yields a Pareto frontier where
//     paying more always buys more accuracy;
//  5. profiler hygiene: under a sustained SLO burn the profiler fires
//     exactly once, suppresses every re-trigger through the cooldown,
//     and re-arms after it.
const (
	// costIMaxFrac caps Algorithm 1's improvement phase so coarse
	// ladder levels stay genuinely cheaper: an unloaded backend would
	// otherwise improve every answer back to an exact scan, collapsing
	// the per-level cost differences the frontier is built from.
	costIMaxFrac = 0.01
	// costCallsPerCell is how many Bounded requests each
	// (tenant, level) cell receives.
	costCallsPerCell = 4
	// costShareFloor / costShareCeilPerShard bound contract 2: child
	// exec+queue time as a fraction of parent wall time must exceed the
	// floor (the accounts are not empty) and stay under ceil × shards
	// (sub-operations run inside the parent's window, so each shard can
	// contribute at most ~one wall's worth, plus timing jitter).
	costShareFloor        = 1e-4
	costShareCeilPerShard = 1.25
	// costProfCooldown / costProfCPUDur configure the profiler phase's
	// fake-clock cooldown and (real-time) CPU capture duration.
	costProfCooldown = 10 * time.Second
	costProfCPUDur   = 5 * time.Millisecond
)

// costTenants are the synthetic tenants of the attribution pass.
var costTenants = []string{"acme", "bravo", "carol"}

// CostCompare is the experiment result.
type CostCompare struct {
	Servers int
	Levels  int

	// Zero-cost contract.
	DisabledAllocs float64
	RaceDetector   bool

	// Attribution pass.
	Calls     int
	Rows      int
	WantRows  int
	SumOK     bool
	WorkShare float64 // (CPU+queue) / wall over the global totals
	ShareCeil float64

	// Frontier join.
	FrontierPoints    int
	FrontierDominated int
	FrontierSpread    float64 // scanned ratio, most/least expensive point

	// Profiler phase.
	ProfTriggered  int64
	ProfSuppressed int64
	ProfRefired    bool
	ProfReason     string
	ProfHeapOK     bool

	ZeroAllocOK bool
	ConserveOK  bool
	TenantSumOK bool
	FrontierOK  bool
	ProfilerOK  bool
}

// OK reports whether every asserted contract held.
func (cc *CostCompare) OK() bool {
	return cc.ZeroAllocOK && cc.ConserveOK && cc.TenantSumOK && cc.FrontierOK && cc.ProfilerOK
}

// RunCostCompare runs the cost-plane validation at a scale.
func RunCostCompare(sc Scale) (*CostCompare, error) {
	svc, err := BuildAggService(sc)
	if err != nil {
		return nil, err
	}
	queries := svc.Data.SampleAggQueries(sc.Seed^0xc057, 16)
	levels := svc.Comps[0].Syn.Levels()
	cc := &CostCompare{Servers: len(svc.Comps), Levels: levels, RaceDetector: raceEnabled}

	// (1) Zero cost when off: no account on the context means every
	// accounting call is a nil-receiver no-op.
	ctx := context.Background()
	cc.DisabledAllocs = testing.AllocsPerRun(1000, func() {
		acct := cost.AccountFrom(ctx)
		acct.Add(cost.Usage{CPUNs: 1, Scanned: 2})
		acct.AddWireBytes(64)
	})
	cc.ZeroAllocOK = cc.DisabledAllocs == 0 || raceEnabled

	// (2)-(4) share one metered loopback stack.
	v, err := runCostPass(svc, queries, levels)
	if err != nil {
		return nil, err
	}
	cc.Calls = len(costTenants) * levels * costCallsPerCell
	cc.Rows = len(v.Rows)
	cc.WantRows = len(costTenants) * levels

	// (2) Conservation: the folded child costs explain a bounded,
	// nonzero share of the parents' wall time.
	work := v.Global.CPUNs + v.Global.QueueNs
	if v.Global.WallNs > 0 {
		cc.WorkShare = float64(work) / float64(v.Global.WallNs)
	}
	cc.ShareCeil = costShareCeilPerShard * float64(cc.Servers)
	cc.ConserveOK = v.Global.Scanned > 0 && v.Global.WireBytes > 0 &&
		cc.WorkShare >= costShareFloor && cc.WorkShare <= cc.ShareCeil

	// (3) Tenant attribution: rows sum to the global totals exactly.
	var sum cost.Usage
	var sumReq uint64
	for _, r := range v.Rows {
		sum = sum.Add(r.Totals)
		sumReq += r.Requests
	}
	cc.TenantSumOK = cc.Rows == cc.WantRows &&
		sum == v.Global && sumReq == v.Requests && v.Requests == uint64(cc.Calls)

	// (4) Frontier: join the table's measured per-level scan costs with
	// the measured per-level accuracy and require a monotone Pareto
	// curve of at least two points.
	var pts []cost.AccuracyPoint
	for l := 0; l < levels; l++ {
		pts = append(pts, cost.AccuracyPoint{
			Workload: "agg", Level: int16(l),
			Accuracy: agg.MeasureLevelAccuracy(svc.Comps, queries, l),
			Samples:  costCallsPerCell,
		})
	}
	curves := cost.Frontier(v, pts)
	cc.FrontierOK = len(curves) == 1 && curves[0].Workload == "agg"
	if cc.FrontierOK {
		c := curves[0]
		cc.FrontierPoints = len(c.Points)
		cc.FrontierDominated = len(c.Dominated)
		cc.FrontierOK = len(c.Points) >= 2 &&
			len(c.Points)+len(c.Dominated) == levels
		for i := 1; i < len(c.Points); i++ {
			if c.Points[i].Scanned <= c.Points[i-1].Scanned ||
				c.Points[i].Accuracy <= c.Points[i-1].Accuracy {
				cc.FrontierOK = false
			}
		}
		if n := len(c.Points); n >= 2 && c.Points[0].Scanned > 0 {
			cc.FrontierSpread = c.Points[n-1].Scanned / c.Points[0].Scanned
		}
	}

	// (5) Profiler hygiene under a sustained burn.
	if err := cc.runProfilerPhase(); err != nil {
		return nil, err
	}
	return cc, nil
}

// runCostPass builds a metered loopback stack over the shared
// components and drives costCallsPerCell Bounded requests into every
// (tenant, ladder level) cell, then snapshots the cost table.
func runCostPass(svc *AggService, queries []agg.Query, levels int) (cost.View, error) {
	n := len(svc.Comps)
	backend := netsvc.NewAggBackend(svc.Comps, netsvc.BackendOptions{IMaxFrac: costIMaxFrac})
	var closers []func()
	defer func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return cost.View{}, err
		}
		srv := netsvc.NewServer(backend, netsvc.ServerOptions{Workers: 1, QueueLen: 256})
		go srv.Serve(l)
		closers = append(closers, srv.Close)
		addrs[i] = l.Addr().String()
	}
	agr, err := netsvc.NewAggregator(addrs, netsvc.AggregatorOptions{Policy: service.WaitAll, Deadline: 2 * time.Second})
	if err != nil {
		return cost.View{}, err
	}
	closers = append(closers, agr.Close)
	if err := agr.WaitReady(5 * time.Second); err != nil {
		return cost.View{}, err
	}
	// Cost attribution rides tracing: the front server needs a tracer
	// so component spans come back costed.
	fs := netsvc.NewFrontServer(agr, nil, netsvc.ServerOptions{Tracer: obs.NewRecorder(64, 16)})
	table := cost.NewTable()
	if err := fs.EnableCost(table); err != nil {
		return cost.View{}, err
	}
	fl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return cost.View{}, err
	}
	go fs.Serve(fl)
	closers = append(closers, fs.Close)
	cl, err := netsvc.DialClient(fl.Addr().String(), netsvc.ClientOptions{})
	if err != nil {
		return cost.View{}, err
	}
	closers = append(closers, func() { cl.Close() })

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	i := 0
	for _, tenant := range costTenants {
		for l := 0; l < levels; l++ {
			for c := 0; c < costCallsPerCell; c++ {
				q := queries[i%len(queries)]
				i++
				req := &wire.Request{
					Kind: wire.KindAgg, Subset: -1,
					SLO: wire.SLOBounded, Level: int16(l),
					Tenant: tenant,
					Agg:    &wire.AggRequest{Op: uint8(q.Op), Lo: q.Lo, Hi: q.Hi},
				}
				rep, err := cl.Call(ctx, req)
				if err != nil {
					return cost.View{}, err
				}
				if rep.Status != wire.ReplyOK {
					return cost.View{}, fmt.Errorf("costcompare: %s level %d call status %d (%s)", tenant, l, rep.Status, rep.Err)
				}
			}
		}
	}
	return table.Snapshot(), nil
}

// runProfilerPhase induces a sustained SLO burn (every Exact-class
// request missing its deadline — burn 1000x budget) and asserts the
// watching profiler fires once, cools down, and re-arms.
func (cc *CostCompare) runProfilerPhase() error {
	tr := obs.NewSLOTracker(obs.DefaultSLOBudgets())
	for i := 0; i < 50; i++ {
		tr.Record(wire.SLOExact, "", obs.SLODeadlineMiss)
	}
	prof := obs.NewProfiler(4, costProfCPUDur, costProfCooldown)
	// Fake cooldown clock: real time drives the watcher ticker and the
	// CPU capture; the clock only decides when the cooldown has passed.
	base := time.Now()
	var skew atomic.Int64
	prof.SetClock(func() time.Time { return base.Add(time.Duration(skew.Load())) })

	stop := prof.WatchBurn(tr, time.Millisecond)
	defer stop()
	waitFor := func(cond func(obs.ProfilerView) bool) bool {
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if cond(prof.Snapshot()) {
				return true
			}
			time.Sleep(time.Millisecond)
		}
		return false
	}
	// Fire once...
	if !waitFor(func(v obs.ProfilerView) bool { return v.Triggered >= 1 }) {
		return fmt.Errorf("costcompare: profiler never fired on a 1000x burn")
	}
	// ...then cool down: the watcher keeps evaluating every millisecond
	// against the same burning tracker, and every re-trigger must be
	// suppressed until the clock moves.
	if !waitFor(func(v obs.ProfilerView) bool { return v.SuppressedCooldown >= 5 }) {
		return fmt.Errorf("costcompare: no cooldown suppressions under a sustained burn: %+v", prof.Snapshot())
	}
	mid := prof.Snapshot()
	cc.ProfSuppressed = mid.SuppressedCooldown
	if mid.Triggered != 1 {
		return fmt.Errorf("costcompare: %d captures inside the cooldown window, want exactly 1", mid.Triggered)
	}
	// ...then re-arm once the cooldown has elapsed.
	skew.Store(int64(costProfCooldown + time.Second))
	cc.ProfRefired = waitFor(func(v obs.ProfilerView) bool { return v.Triggered >= 2 })
	stop()
	prof.Wait()
	end := prof.Snapshot()
	cc.ProfTriggered = end.Triggered
	for _, p := range end.Profiles {
		cc.ProfReason = p.Reason
		if p.HeapBytes > 0 {
			cc.ProfHeapOK = true
		}
	}
	cc.ProfilerOK = cc.ProfRefired && end.Triggered == 2 &&
		cc.ProfSuppressed >= 5 && cc.ProfHeapOK &&
		strings.HasPrefix(cc.ProfReason, "slo-burn")
	return nil
}

// Render formats the validation report.
func (cc *CostCompare) Render() string {
	var b strings.Builder
	mark := func(v bool) string {
		if v {
			return "ok"
		}
		return "FAIL"
	}
	fmt.Fprintf(&b, "COSTCOMPARE: cost attribution plane over loopback TCP (%d component servers, %d ladder levels)\n\n",
		cc.Servers, cc.Levels)
	if cc.RaceDetector {
		fmt.Fprintf(&b, "  zero-cost    %-4s  cost-off accounting path %.1f allocs/op (informational under -race)\n",
			mark(cc.ZeroAllocOK), cc.DisabledAllocs)
	} else {
		fmt.Fprintf(&b, "  zero-cost    %-4s  cost-off accounting path %.1f allocs/op (want 0)\n",
			mark(cc.ZeroAllocOK), cc.DisabledAllocs)
	}
	fmt.Fprintf(&b, "  conservation %-4s  component exec+queue explain %.3fx of parent wall time (want within [%g, %.2f])\n",
		mark(cc.ConserveOK), cc.WorkShare, costShareFloor, cc.ShareCeil)
	fmt.Fprintf(&b, "  attribution  %-4s  %d calls over %d tenants: %d/%d rows, per-tenant sums == global totals exactly\n",
		mark(cc.TenantSumOK), cc.Calls, len(costTenants), cc.Rows, cc.WantRows)
	fmt.Fprintf(&b, "  frontier     %-4s  %d Pareto points (+%d dominated) of %d levels, scanned spread %.1fx, accuracy strictly increasing with cost\n",
		mark(cc.FrontierOK), cc.FrontierPoints, cc.FrontierDominated, cc.Levels, cc.FrontierSpread)
	fmt.Fprintf(&b, "  profiler     %-4s  fired %d (want 2: once + re-arm), %d re-triggers suppressed by cooldown, reason %q\n",
		mark(cc.ProfilerOK), cc.ProfTriggered, cc.ProfSuppressed, cc.ProfReason)

	b.WriteString("\nReading: every answered request carries its own bill — component exec time, scan units, queue\n")
	b.WriteString("time and wire bytes folded from span costs into a per-(tenant, class, workload, level) table —\n")
	b.WriteString("so \"who is spending our capacity, and on what accuracy\" is a table lookup, not a forensic\n")
	b.WriteString("exercise. The conservation and exact-sum contracts keep the meter honest; the frontier join\n")
	b.WriteString("turns it into the live accuracy-vs-cost trade-off curve the paper's ladder promises; and when\n")
	b.WriteString("an SLO burns or a breaker opens, the profiler captures the evidence once, immediately, and\n")
	b.WriteString("without becoming its own overload.\n")
	return b.String()
}
