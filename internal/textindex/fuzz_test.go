package textindex

import (
	"testing"
	"unicode"
)

// FuzzTokenize checks the analyzer's invariants on arbitrary input:
// tokens are lowercase alphanumeric, at least two runes, and never
// stopwords.
func FuzzTokenize(f *testing.F) {
	f.Add("The quick brown fox")
	f.Add("Héllo, wörld! 123 -- a b cd")
	f.Add("")
	f.Add("ALL CAPS AND    SPACES")
	f.Add("emoji 🎉 mixed 中文 tokens42")
	f.Fuzz(func(t *testing.T, text string) {
		for _, tok := range Tokenize(text) {
			if len(tok) < 2 {
				t.Fatalf("short token %q", tok)
			}
			if stopwords[tok] {
				t.Fatalf("stopword %q leaked", tok)
			}
			for _, r := range tok {
				if !(r >= 'a' && r <= 'z' || unicode.IsDigit(r) && r < 128) {
					t.Fatalf("token %q contains %q", tok, r)
				}
			}
		}
	})
}

// FuzzIndexOps drives an index through arbitrary add/update/delete/search
// sequences and checks it never panics unexpectedly and keeps NumDocs
// consistent.
func FuzzIndexOps(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3}, "alpha beta gamma")
	f.Add([]byte{0, 0, 1, 3, 2}, "delta epsilon")
	f.Fuzz(func(t *testing.T, ops []byte, text string) {
		ix := NewIndex()
		live := 0
		for _, op := range ops {
			switch op % 4 {
			case 0:
				ix.Add(text + " filler words here")
				live++
			case 1:
				if live > 0 {
					// Update the first live doc.
					for d := 0; d < ix.NumSlots(); d++ {
						if ix.Alive(d) {
							ix.Update(d, text)
							break
						}
					}
				}
			case 2:
				if live > 0 {
					for d := 0; d < ix.NumSlots(); d++ {
						if ix.Alive(d) {
							ix.Delete(d)
							live--
							break
						}
					}
				}
			case 3:
				q := ix.ParseQuery(text)
				hits := ix.Search(q, 5)
				for _, h := range hits {
					if !ix.Alive(h.Doc) {
						t.Fatal("dead doc retrieved")
					}
				}
			}
			if ix.NumDocs() != live {
				t.Fatalf("NumDocs %d, want %d", ix.NumDocs(), live)
			}
		}
	})
}
