// Package textindex implements the web search engine substrate of the
// paper (§3.2): a Lucene-style inverted index with classic TF-IDF
// similarity scoring, top-k retrieval, incremental document updates, and
// the AccuracyTrader integration — aggregated web pages merged from
// synopsis groups and an Algorithm 1 engine that retrieves from the
// synopsis first and then refines with the original pages of the highest
// scoring groups.
package textindex
