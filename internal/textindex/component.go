package textindex

import (
	"math"
	"runtime"
	"slices"
	"sort"
	"sync"

	"accuracytrader/internal/synopsis"
	"accuracytrader/internal/topk"
)

// AggregatedPage is one synopsis point for text data: the paper's step-3
// aggregation merges the member pages' contents, so its term vector is the
// element-wise sum of the members' and its length their total length.
type AggregatedPage struct {
	GroupID int64
	Terms   []TermFreq // sorted by term
	Len     int
	Members []int
}

// aggregatePage merges the member documents of one group.
func aggregatePage(ix *Index, groupID int64, members []int) AggregatedPage {
	freqs := make(map[int32]int32)
	length := 0
	for _, d := range members {
		for _, e := range ix.termVec(d) {
			freqs[e.Term] += e.Freq
		}
		length += ix.docLen[d]
	}
	ap := AggregatedPage{GroupID: groupID, Members: members, Len: length}
	for t, f := range freqs {
		ap.Terms = append(ap.Terms, TermFreq{Term: t, Freq: f})
	}
	slices.SortFunc(ap.Terms, func(a, b TermFreq) int { return int(a.Term) - int(b.Term) })
	return ap
}

// Score computes the aggregated page's similarity to a query using the
// same classic TF-IDF formula as real pages (idf from the backing index).
func (ap AggregatedPage) Score(ix *Index, q Query) float64 {
	sum := 0.0
	matched := 0
	for qi, t := range q.Terms {
		k := sort.Search(len(ap.Terms), func(i int) bool { return ap.Terms[i].Term >= t })
		if k < len(ap.Terms) && ap.Terms[k].Term == t {
			sum += math.Sqrt(float64(ap.Terms[k].Freq)) * q.idf2[qi]
			matched++
		}
	}
	return ix.finalScore(sum, matched, len(q.Terms), ap.Len)
}

// Component is one parallel service component of the search engine: its
// index subset plus the synopsis and cached aggregated pages.
type Component struct {
	Ix   *Index
	Syn  *synopsis.Synopsis
	Aggs []AggregatedPage
}

// BuildComponent creates the component's synopsis and aggregates every
// group.
func BuildComponent(ix *Index, cfg synopsis.Config) (*Component, error) {
	syn, err := synopsis.Build(FeatureSource{Ix: ix}, cfg)
	if err != nil {
		return nil, err
	}
	c := &Component{Ix: ix, Syn: syn}
	c.reaggregate(nil)
	return c, nil
}

func (c *Component) reaggregate(prev map[int64]AggregatedPage) {
	c.Aggs = AggregatePages(c.Ix, c.Syn.Groups(), prev)
}

// AggregatePages performs step 3 (content merging) for all groups in
// parallel across CPU cores — the in-process substitute for the paper's
// Spark-based distributed aggregation (§3.1). Groups present in prev (by
// ID) reuse their cached aggregate.
func AggregatePages(ix *Index, groups []synopsis.Group, prev map[int64]AggregatedPage) []AggregatedPage {
	aggs := make([]AggregatedPage, len(groups))
	var todo []int
	for i, g := range groups {
		if ap, ok := prev[g.ID]; ok {
			aggs[i] = ap
			continue
		}
		todo = append(todo, i)
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(todo) {
		workers = len(todo)
	}
	if workers <= 1 {
		for _, i := range todo {
			aggs[i] = aggregatePage(ix, groups[i].ID, groups[i].Members)
		}
		return aggs
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				aggs[i] = aggregatePage(ix, groups[i].ID, groups[i].Members)
			}
		}()
	}
	for _, i := range todo {
		next <- i
	}
	close(next)
	wg.Wait()
	return aggs
}

// ApplyChanges routes input-data changes through the synopsis updater and
// re-aggregates only changed groups. The index must already reflect the
// changes (Add/Update/Delete) before calling.
func (c *Component) ApplyChanges(changes []synopsis.Change) (synopsis.UpdateStats, error) {
	prev := make(map[int64]AggregatedPage, len(c.Aggs))
	for _, ap := range c.Aggs {
		prev[ap.GroupID] = ap
	}
	st, err := c.Syn.Update(changes)
	if err != nil {
		return st, err
	}
	c.reaggregate(prev)
	return st, nil
}

// SynopsisSize returns the number of aggregated pages.
func (c *Component) SynopsisSize() int { return len(c.Aggs) }

// GroupSize returns the number of member pages of group g (the
// simulator's unit of improvement work).
func (c *Component) GroupSize(g int) int { return len(c.Aggs[g].Members) }

// Engine runs Algorithm 1 for one search request on one component. The
// correlation of an aggregated page is its similarity score to the query
// (paper §2.3: a higher aggregated score means the member pages have
// higher scores on average and are likelier to hold actual top-k pages).
type Engine struct {
	Comp *Component
	Q    Query

	aggScores []float64
	processed []bool
	scored    []Hit
	sel       topk.Selector
	order     []int
}

// NewEngine prepares an engine for a parsed query.
func NewEngine(c *Component, q Query) *Engine {
	e := &Engine{}
	e.Reset(c, q)
	return e
}

// Reset re-targets the engine at a component and query, reusing all
// internal buffers. It makes engines poolable: the live runtime and the
// experiment replays process a request stream with a handful of engines
// instead of allocating one per request.
func (e *Engine) Reset(c *Component, q Query) {
	e.Comp, e.Q = c, q
	e.aggScores = e.aggScores[:0]
	e.processed = e.processed[:0]
	e.scored = e.scored[:0]
}

// enginePool recycles Engines across requests (see GetEngine).
var enginePool = sync.Pool{New: func() any { return new(Engine) }}

// GetEngine returns a pooled engine reset for the query. Release it with
// Engine.Release when the request is finished.
func GetEngine(c *Component, q Query) *Engine {
	e := enginePool.Get().(*Engine)
	e.Reset(c, q)
	return e
}

// Release returns the engine to the pool. The engine (and any slice
// obtained from its ProcessSynopsis) must not be used afterwards.
func (e *Engine) Release() {
	e.Comp = nil
	e.Q = Query{}
	enginePool.Put(e)
}

// ProcessSynopsis scores every aggregated page and returns those scores as
// the correlation estimates. The returned slice is owned by the engine
// and valid until the next Reset or Release.
func (e *Engine) ProcessSynopsis() []float64 {
	m := len(e.Comp.Aggs)
	if cap(e.aggScores) < m {
		e.aggScores = make([]float64, m)
	} else {
		e.aggScores = e.aggScores[:m]
	}
	if cap(e.processed) < m {
		e.processed = make([]bool, m)
	} else {
		e.processed = e.processed[:m]
		clear(e.processed)
	}
	for g, ap := range e.Comp.Aggs {
		e.aggScores[g] = ap.Score(e.Comp.Ix, e.Q)
	}
	return e.aggScores
}

// ProcessSet improves the result by scoring group g's original pages
// exactly.
func (e *Engine) ProcessSet(g int) {
	if e.processed[g] {
		return
	}
	e.processed[g] = true
	for _, d := range e.Comp.Aggs[g].Members {
		if s := e.Comp.Ix.ScoreDoc(e.Q, d); s > 0 {
			e.scored = append(e.scored, Hit{Doc: d, Score: s})
		}
	}
}

// TopK returns the component's current best-k result: exactly scored
// pages first; if fewer than k, the remainder is filled with member pages
// of the best unprocessed aggregated pages in descending aggregated score
// (the synopsis-only initial result of Algorithm 1 line 1).
func (e *Engine) TopK(k int) []Hit {
	// Bounded top-k selection over the exactly scored pages: no full sort,
	// no per-call copy of the scored list.
	e.sel.Reset(k)
	for _, h := range e.scored {
		e.sel.Offer(h.Doc, h.Score)
	}
	selected := e.sel.Sorted()
	hits := make([]Hit, 0, k)
	for _, it := range selected {
		hits = append(hits, Hit{Doc: it.ID, Score: it.Score})
	}
	if len(e.scored) >= k {
		return hits
	}
	// Fill from unprocessed groups by aggregated rank.
	e.order = e.order[:0]
	for g := range e.aggScores {
		if !e.processed[g] && e.aggScores[g] > 0 {
			e.order = append(e.order, g)
		}
	}
	order := e.order
	sort.Slice(order, func(a, b int) bool {
		if e.aggScores[order[a]] != e.aggScores[order[b]] {
			return e.aggScores[order[a]] > e.aggScores[order[b]]
		}
		return order[a] < order[b]
	})
	for _, g := range order {
		for _, d := range e.Comp.Aggs[g].Members {
			if !e.Comp.Ix.Alive(d) {
				continue
			}
			// Filler pages carry the aggregated score as an estimate.
			hits = append(hits, Hit{Doc: d, Score: e.aggScores[g]})
			if len(hits) >= k {
				return hits[:k]
			}
		}
	}
	return hits
}

// ExactTopK is the component's exact result over its whole subset.
func ExactTopK(c *Component, q Query, k int) []Hit {
	return c.Ix.Search(q, k)
}

// TopKOverlap returns the fraction of the actual top-k documents present
// in the retrieved hits — the paper's search accuracy metric.
func TopKOverlap(actual, retrieved []Hit) float64 {
	if len(actual) == 0 {
		return 1
	}
	in := make(map[int]bool, len(retrieved))
	for _, h := range retrieved {
		in[h.Doc] = true
	}
	n := 0
	for _, h := range actual {
		if in[h.Doc] {
			n++
		}
	}
	return float64(n) / float64(len(actual))
}

// MergeTopK merges per-component hit lists into a global top-k via
// bounded selection (no concatenated copy, no full sort).
func MergeTopK(parts [][]Hit, k int) []Hit {
	var sel topk.Selector
	sel.Reset(k)
	n := 0
	for _, p := range parts {
		n += len(p)
		for _, h := range p {
			sel.Offer(h.Doc, h.Score)
		}
	}
	if n < k {
		k = n
	}
	out := make([]Hit, 0, k)
	for _, it := range sel.Sorted() {
		out = append(out, Hit{Doc: it.ID, Score: it.Score})
	}
	return out
}
