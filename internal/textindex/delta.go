package textindex

import (
	"math"
	"slices"
	"sort"
)

// ScoreTermVec scores a term vector that is not in the index — a
// streaming-ingest delta document awaiting compaction — with exactly
// ScoreDoc's kernel: per query term, a binary search over the sorted
// vector, then the coord factor and length norm. Delta documents are
// scored at the base epoch's idf weights (the Query carries them), so
// their scores match a frozen rebuild only once compaction folds them
// into the index; until then they are the freshness approximation the
// ingest layer documents.
func (ix *Index) ScoreTermVec(q Query, tv []TermFreq, docLen int) float64 {
	sum := 0.0
	matched := 0
	for qi, t := range q.Terms {
		k := sort.Search(len(tv), func(i int) bool { return tv[i].Term >= t })
		if k < len(tv) && tv[k].Term == t {
			sum += math.Sqrt(float64(tv[k].Freq)) * q.idf2[qi]
			matched++
		}
	}
	return ix.finalScore(sum, matched, len(q.Terms), docLen)
}

// AnalyzeDelta tokenizes text against the index's existing vocabulary
// for delta scoring: the returned term vector (sorted by term) keeps
// only known terms — out-of-vocabulary tokens enter the vocabulary at
// the next compaction — while the returned document length counts every
// token, matching what setDoc records when the document is folded into
// a rebuilt base.
func (ix *Index) AnalyzeDelta(text string) ([]TermFreq, int) {
	tokens := Tokenize(text)
	freqs := make(map[int32]int32)
	for _, tok := range tokens {
		if id, ok := ix.vocab[tok]; ok {
			freqs[id]++
		}
	}
	tv := make([]TermFreq, 0, len(freqs))
	for t, f := range freqs {
		tv = append(tv, TermFreq{Term: t, Freq: f})
	}
	slices.SortFunc(tv, func(a, b TermFreq) int { return int(a.Term) - int(b.Term) })
	return tv, len(tokens)
}
