package textindex

import (
	"math"
	"slices"
	"sort"
	"sync"

	"accuracytrader/internal/csr"
	"accuracytrader/internal/svd"
	"accuracytrader/internal/topk"
)

// Posting is one (document, term frequency) pair in a postings list.
type Posting struct {
	Doc int32
	TF  int32
}

// TermFreq is one (term, frequency) pair of a document's term vector.
type TermFreq struct {
	Term int32
	Freq int32
}

// Index is an inverted index with Lucene-classic TF-IDF scoring:
//
//	score(q,d) = coord(q,d) * sum_t sqrt(tf(t,d)) * idf(t)^2 / sqrt(len(d))
//
// with idf(t) = 1 + ln(N/(df(t)+1)). The query norm is omitted as it is
// constant per query and does not affect ranking. Documents can be added,
// updated in place and deleted, supporting the synopsis updater's
// "changed web pages" scenario.
//
// Postings and per-document term vectors live in flat CSR backing arrays
// (internal/csr): one allocation for all terms instead of one slice per
// term, and scoring streams each postings list from contiguous memory.
type Index struct {
	vocab    map[string]int32
	terms    []string
	postings csr.Store[Posting]  // row per term, sorted by doc
	docTerms csr.Store[TermFreq] // row per doc, sorted by term
	docLen   []int
	alive    []bool
	live     int

	// scratch pools per-query scoring state (dense score/coord arrays and
	// the top-k selector) so concurrent Searches on a warm index allocate
	// nothing. Holds *searchScratch.
	scratch sync.Pool
}

// searchScratch is the reusable per-query scoring state: dense per-doc
// accumulators plus the list of touched docs (so clearing costs O(touched),
// not O(docs)).
type searchScratch struct {
	score []float64
	// coord is uint32, not uint16: a pathological query repeating one term
	// >65535 times must not wrap the count (it feeds both the coord factor
	// and the first-touch dedup of touched).
	coord   []uint32
	touched []int32
	sel     topk.Selector
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{vocab: make(map[string]int32)}
}

// NumDocs returns the number of live documents.
func (ix *Index) NumDocs() int { return ix.live }

// NumTerms returns the vocabulary size.
func (ix *Index) NumTerms() int { return len(ix.terms) }

// NumSlots returns the number of document slots ever allocated, including
// deleted documents (doc ids are never reused).
func (ix *Index) NumSlots() int { return len(ix.docLen) }

// DocLen returns the token count of document d.
func (ix *Index) DocLen(d int) int { return ix.docLen[d] }

// Alive reports whether document d exists and is not deleted.
func (ix *Index) Alive(d int) bool { return d >= 0 && d < len(ix.alive) && ix.alive[d] }

// TermID returns the id of a term, if known.
func (ix *Index) TermID(term string) (int32, bool) {
	id, ok := ix.vocab[term]
	return id, ok
}

// termVec returns document d's term vector (aliases the backing array;
// valid until the next index mutation).
func (ix *Index) termVec(d int) []TermFreq { return ix.docTerms.Row(d) }

// Add indexes a document and returns its id.
func (ix *Index) Add(text string) int {
	doc := ix.docTerms.AddRow(nil)
	ix.docLen = append(ix.docLen, 0)
	ix.alive = append(ix.alive, true)
	ix.live++
	ix.setDoc(doc, text)
	return doc
}

// Update replaces document d's contents in place (a changed web page).
func (ix *Index) Update(d int, text string) {
	if !ix.Alive(d) {
		panic("textindex: Update of dead document")
	}
	ix.removePostings(d)
	ix.setDoc(d, text)
}

// Delete removes document d.
func (ix *Index) Delete(d int) {
	if !ix.Alive(d) {
		panic("textindex: Delete of dead document")
	}
	ix.removePostings(d)
	ix.docTerms.SetRow(d, nil)
	ix.docLen[d] = 0
	ix.alive[d] = false
	ix.live--
}

func (ix *Index) setDoc(d int, text string) {
	tokens := Tokenize(text)
	freqs := make(map[int32]int32)
	for _, tok := range tokens {
		id, ok := ix.vocab[tok]
		if !ok {
			id = int32(len(ix.terms))
			ix.vocab[tok] = id
			ix.terms = append(ix.terms, tok)
			ix.postings.AddRow(nil)
		}
		freqs[id]++
	}
	tv := make([]TermFreq, 0, len(freqs))
	for t, f := range freqs {
		tv = append(tv, TermFreq{Term: t, Freq: f})
	}
	slices.SortFunc(tv, func(a, b TermFreq) int { return int(a.Term) - int(b.Term) })
	ix.docTerms.SetRow(d, tv)
	ix.docLen[d] = len(tokens)
	for _, e := range tv {
		ix.insertPosting(e.Term, Posting{Doc: int32(d), TF: e.Freq})
	}
}

func (ix *Index) insertPosting(term int32, p Posting) {
	ps := ix.postings.Row(int(term))
	k := sort.Search(len(ps), func(i int) bool { return ps[i].Doc >= p.Doc })
	ix.postings.InsertAt(int(term), k, p)
}

func (ix *Index) removePostings(d int) {
	for _, e := range ix.docTerms.Row(d) {
		ps := ix.postings.Row(int(e.Term))
		k := sort.Search(len(ps), func(i int) bool { return ps[i].Doc >= int32(d) })
		if k < len(ps) && ps[k].Doc == int32(d) {
			ix.postings.RemoveAt(int(e.Term), k)
		}
	}
}

// IDF returns the inverse document frequency of a term id, floored at 0:
// deleted-doc churn can push the raw value below zero (df+1 exceeding N),
// and a negative idf² would flip the ranking contribution of the rarest
// terms.
func (ix *Index) IDF(term int32) float64 {
	df := ix.postings.Len(int(term))
	idf := 1 + math.Log(float64(ix.live)/(float64(df)+1))
	if idf < 0 {
		return 0
	}
	return idf
}

// Query is an analyzed query: the known term ids of its tokens.
type Query struct {
	Terms []int32
	idf2  []float64
}

// ParseQuery analyzes raw query text against the index vocabulary;
// out-of-vocabulary tokens are dropped, duplicates kept (they boost the
// term like Lucene does).
func (ix *Index) ParseQuery(text string) Query {
	var q Query
	for _, tok := range Tokenize(text) {
		if id, ok := ix.vocab[tok]; ok {
			q.Terms = append(q.Terms, id)
			idf := ix.IDF(id)
			q.idf2 = append(q.idf2, idf*idf)
		}
	}
	return q
}

// Hit is one retrieved document with its similarity score.
type Hit struct {
	Doc   int
	Score float64
}

// getScratch returns per-query scoring state sized for the index.
func (ix *Index) getScratch() *searchScratch {
	sc, _ := ix.scratch.Get().(*searchScratch)
	if sc == nil {
		sc = &searchScratch{}
	}
	if n := len(ix.docLen); len(sc.score) < n {
		sc.score = make([]float64, n)
		sc.coord = make([]uint32, n)
	}
	return sc
}

// Search scores all live documents against the query and returns the top
// k hits in descending score order (ties: ascending doc id) — the exact
// full computation the baselines perform. The result slice is freshly
// allocated; use SearchInto to reuse a caller buffer.
func (ix *Index) Search(q Query, k int) []Hit {
	return ix.SearchInto(nil, q, k)
}

// SearchInto is Search writing the hits into dst (reused when capacity
// allows, truncated first).
func (ix *Index) SearchInto(dst []Hit, q Query, k int) []Hit {
	dst = dst[:0]
	if k <= 0 || len(q.Terms) == 0 {
		return dst
	}
	sc := ix.getScratch()
	// Accumulate term contributions into the dense arrays. Accumulation
	// order matches the per-doc order of the reference kernel (query terms
	// outer, postings inner), so scores are bit-identical to it.
	for qi, t := range q.Terms {
		w := q.idf2[qi]
		for _, p := range ix.postings.Row(int(t)) {
			if sc.coord[p.Doc] == 0 {
				sc.touched = append(sc.touched, p.Doc)
			}
			sc.score[p.Doc] += math.Sqrt(float64(p.TF)) * w
			sc.coord[p.Doc]++
		}
	}
	// Select top-k over touched docs, clearing the accumulators as we go.
	sel := &sc.sel
	sel.Reset(k)
	qLen := len(q.Terms)
	for _, d := range sc.touched {
		sum, matched := sc.score[d], int(sc.coord[d])
		sc.score[d], sc.coord[d] = 0, 0
		if !ix.alive[d] {
			continue
		}
		sel.Offer(int(d), ix.finalScore(sum, matched, qLen, ix.docLen[d]))
	}
	sc.touched = sc.touched[:0]
	selected := sel.Sorted()
	if cap(dst) < len(selected) {
		dst = make([]Hit, 0, len(selected))
	}
	for _, it := range selected {
		dst = append(dst, Hit{Doc: it.ID, Score: it.Score})
	}
	ix.scratch.Put(sc)
	return dst
}

// ScoreDoc scores a single live document against the query (0 when no
// term matches).
func (ix *Index) ScoreDoc(q Query, d int) float64 {
	if !ix.Alive(d) {
		return 0
	}
	tv := ix.docTerms.Row(d)
	sum := 0.0
	matched := 0
	for qi, t := range q.Terms {
		k := sort.Search(len(tv), func(i int) bool { return tv[i].Term >= t })
		if k < len(tv) && tv[k].Term == t {
			sum += math.Sqrt(float64(tv[k].Freq)) * q.idf2[qi]
			matched++
		}
	}
	return ix.finalScore(sum, matched, len(q.Terms), ix.docLen[d])
}

// finalScore applies the coord factor and the length norm.
func (ix *Index) finalScore(sum float64, matched, qLen, docLen int) float64 {
	if sum == 0 || qLen == 0 || docLen == 0 {
		return 0
	}
	coord := float64(matched) / float64(qLen)
	return coord * sum / math.Sqrt(float64(docLen))
}

// SortHits orders hits by descending score, breaking ties by ascending
// doc id for determinism.
func SortHits(hits []Hit) {
	slices.SortFunc(hits, func(a, b Hit) int {
		switch {
		case a.Score > b.Score:
			return -1
		case a.Score < b.Score:
			return 1
		default:
			return a.Doc - b.Doc
		}
	})
}

// FeatureSource adapts the index to synopsis building: each document is a
// data point whose sparse features are term occurrence counts (paper
// §2.2 step 1, text datasets).
type FeatureSource struct{ Ix *Index }

// NumPoints returns the number of documents ever added (dead ones keep
// their slot with an empty feature vector).
func (f FeatureSource) NumPoints() int { return f.Ix.NumSlots() }

// NumFeatures returns the vocabulary size.
func (f FeatureSource) NumFeatures() int { return f.Ix.NumTerms() }

// Features returns document i's term counts as SVD cells.
func (f FeatureSource) Features(i int) []svd.Cell {
	tv := f.Ix.termVec(i)
	cells := make([]svd.Cell, len(tv))
	for k, e := range tv {
		cells[k] = svd.Cell{Col: e.Term, Val: float64(e.Freq)}
	}
	return cells
}
