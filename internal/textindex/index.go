package textindex

import (
	"math"
	"sort"

	"accuracytrader/internal/svd"
)

// Posting is one (document, term frequency) pair in a postings list.
type Posting struct {
	Doc int32
	TF  int32
}

// TermFreq is one (term, frequency) pair of a document's term vector.
type TermFreq struct {
	Term int32
	Freq int32
}

// Index is an inverted index with Lucene-classic TF-IDF scoring:
//
//	score(q,d) = coord(q,d) * sum_t sqrt(tf(t,d)) * idf(t)^2 / sqrt(len(d))
//
// with idf(t) = 1 + ln(N/(df(t)+1)). The query norm is omitted as it is
// constant per query and does not affect ranking. Documents can be added,
// updated in place and deleted, supporting the synopsis updater's
// "changed web pages" scenario.
type Index struct {
	vocab    map[string]int32
	terms    []string
	postings [][]Posting // per term, sorted by doc
	docTerms [][]TermFreq
	docLen   []int
	alive    []bool
	live     int
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{vocab: make(map[string]int32)}
}

// NumDocs returns the number of live documents.
func (ix *Index) NumDocs() int { return ix.live }

// NumTerms returns the vocabulary size.
func (ix *Index) NumTerms() int { return len(ix.terms) }

// DocLen returns the token count of document d.
func (ix *Index) DocLen(d int) int { return ix.docLen[d] }

// Alive reports whether document d exists and is not deleted.
func (ix *Index) Alive(d int) bool { return d >= 0 && d < len(ix.alive) && ix.alive[d] }

// TermID returns the id of a term, if known.
func (ix *Index) TermID(term string) (int32, bool) {
	id, ok := ix.vocab[term]
	return id, ok
}

// Add indexes a document and returns its id.
func (ix *Index) Add(text string) int {
	doc := len(ix.docTerms)
	ix.docTerms = append(ix.docTerms, nil)
	ix.docLen = append(ix.docLen, 0)
	ix.alive = append(ix.alive, true)
	ix.live++
	ix.setDoc(doc, text)
	return doc
}

// Update replaces document d's contents in place (a changed web page).
func (ix *Index) Update(d int, text string) {
	if !ix.Alive(d) {
		panic("textindex: Update of dead document")
	}
	ix.removePostings(d)
	ix.setDoc(d, text)
}

// Delete removes document d.
func (ix *Index) Delete(d int) {
	if !ix.Alive(d) {
		panic("textindex: Delete of dead document")
	}
	ix.removePostings(d)
	ix.docTerms[d] = nil
	ix.docLen[d] = 0
	ix.alive[d] = false
	ix.live--
}

func (ix *Index) setDoc(d int, text string) {
	tokens := Tokenize(text)
	freqs := make(map[int32]int32)
	for _, tok := range tokens {
		id, ok := ix.vocab[tok]
		if !ok {
			id = int32(len(ix.terms))
			ix.vocab[tok] = id
			ix.terms = append(ix.terms, tok)
			ix.postings = append(ix.postings, nil)
		}
		freqs[id]++
	}
	tv := make([]TermFreq, 0, len(freqs))
	for t, f := range freqs {
		tv = append(tv, TermFreq{Term: t, Freq: f})
	}
	sort.Slice(tv, func(i, j int) bool { return tv[i].Term < tv[j].Term })
	ix.docTerms[d] = tv
	ix.docLen[d] = len(tokens)
	for _, e := range tv {
		ix.insertPosting(e.Term, Posting{Doc: int32(d), TF: e.Freq})
	}
}

func (ix *Index) insertPosting(term int32, p Posting) {
	ps := ix.postings[term]
	k := sort.Search(len(ps), func(i int) bool { return ps[i].Doc >= p.Doc })
	ps = append(ps, Posting{})
	copy(ps[k+1:], ps[k:])
	ps[k] = p
	ix.postings[term] = ps
}

func (ix *Index) removePostings(d int) {
	for _, e := range ix.docTerms[d] {
		ps := ix.postings[e.Term]
		k := sort.Search(len(ps), func(i int) bool { return ps[i].Doc >= int32(d) })
		if k < len(ps) && ps[k].Doc == int32(d) {
			ix.postings[e.Term] = append(ps[:k], ps[k+1:]...)
		}
	}
}

// IDF returns the inverse document frequency of a term id.
func (ix *Index) IDF(term int32) float64 {
	df := len(ix.postings[term])
	return 1 + math.Log(float64(ix.live)/(float64(df)+1))
}

// Query is an analyzed query: the known term ids of its tokens.
type Query struct {
	Terms []int32
	idf2  []float64
}

// ParseQuery analyzes raw query text against the index vocabulary;
// out-of-vocabulary tokens are dropped, duplicates kept (they boost the
// term like Lucene does).
func (ix *Index) ParseQuery(text string) Query {
	var q Query
	for _, tok := range Tokenize(text) {
		if id, ok := ix.vocab[tok]; ok {
			q.Terms = append(q.Terms, id)
			idf := ix.IDF(id)
			q.idf2 = append(q.idf2, idf*idf)
		}
	}
	return q
}

// Hit is one retrieved document with its similarity score.
type Hit struct {
	Doc   int
	Score float64
}

// Search scores all live documents against the query and returns the top
// k hits in descending score order (ties: ascending doc id) — the exact
// full computation the baselines perform.
func (ix *Index) Search(q Query, k int) []Hit {
	scores := make(map[int32]float64)
	matched := make(map[int32]int)
	for qi, t := range q.Terms {
		for _, p := range ix.postings[t] {
			scores[p.Doc] += math.Sqrt(float64(p.TF)) * q.idf2[qi]
			matched[p.Doc]++
		}
	}
	hits := make([]Hit, 0, len(scores))
	for doc, s := range scores {
		if !ix.alive[doc] {
			continue
		}
		hits = append(hits, Hit{Doc: int(doc), Score: ix.finalScore(s, matched[doc], len(q.Terms), ix.docLen[doc])})
	}
	SortHits(hits)
	if len(hits) > k {
		hits = hits[:k]
	}
	return hits
}

// ScoreDoc scores a single live document against the query (0 when no
// term matches).
func (ix *Index) ScoreDoc(q Query, d int) float64 {
	if !ix.Alive(d) {
		return 0
	}
	tv := ix.docTerms[d]
	sum := 0.0
	matched := 0
	for qi, t := range q.Terms {
		k := sort.Search(len(tv), func(i int) bool { return tv[i].Term >= t })
		if k < len(tv) && tv[k].Term == t {
			sum += math.Sqrt(float64(tv[k].Freq)) * q.idf2[qi]
			matched++
		}
	}
	return ix.finalScore(sum, matched, len(q.Terms), ix.docLen[d])
}

// finalScore applies the coord factor and the length norm.
func (ix *Index) finalScore(sum float64, matched, qLen, docLen int) float64 {
	if sum == 0 || qLen == 0 || docLen == 0 {
		return 0
	}
	coord := float64(matched) / float64(qLen)
	return coord * sum / math.Sqrt(float64(docLen))
}

// SortHits orders hits by descending score, breaking ties by ascending
// doc id for determinism.
func SortHits(hits []Hit) {
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].Doc < hits[j].Doc
	})
}

// FeatureSource adapts the index to synopsis building: each document is a
// data point whose sparse features are term occurrence counts (paper
// §2.2 step 1, text datasets).
type FeatureSource struct{ Ix *Index }

// NumPoints returns the number of documents ever added (dead ones keep
// their slot with an empty feature vector).
func (f FeatureSource) NumPoints() int { return len(f.Ix.docTerms) }

// NumFeatures returns the vocabulary size.
func (f FeatureSource) NumFeatures() int { return f.Ix.NumTerms() }

// Features returns document i's term counts as SVD cells.
func (f FeatureSource) Features(i int) []svd.Cell {
	tv := f.Ix.docTerms[i]
	cells := make([]svd.Cell, len(tv))
	for k, e := range tv {
		cells[k] = svd.Cell{Col: e.Term, Val: float64(e.Freq)}
	}
	return cells
}
