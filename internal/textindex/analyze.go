package textindex

import "strings"

// stopwords is a small English stopword list, matching the kind of
// analysis Lucene's StandardAnalyzer performs.
var stopwords = map[string]bool{
	"a": true, "an": true, "and": true, "are": true, "as": true, "at": true,
	"be": true, "but": true, "by": true, "for": true, "if": true, "in": true,
	"into": true, "is": true, "it": true, "no": true, "not": true, "of": true,
	"on": true, "or": true, "such": true, "that": true, "the": true,
	"their": true, "then": true, "there": true, "these": true, "they": true,
	"this": true, "to": true, "was": true, "will": true, "with": true,
}

// Tokenize lowercases text, splits it on non-alphanumeric runes and drops
// stopwords and single-character tokens.
func Tokenize(text string) []string {
	var tokens []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 1 {
			tok := b.String()
			if !stopwords[tok] {
				tokens = append(tokens, tok)
			}
		}
		b.Reset()
	}
	for _, r := range text {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
		case r >= 'A' && r <= 'Z':
			b.WriteRune(r + ('a' - 'A'))
		default:
			flush()
		}
	}
	flush()
	return tokens
}
