package textindex

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"accuracytrader/internal/stats"
	"accuracytrader/internal/svd"
	"accuracytrader/internal/synopsis"
)

func TestTokenize(t *testing.T) {
	got := Tokenize("The Quick-Brown FOX, and 42 foxes! a I")
	want := []string{"quick", "brown", "fox", "42", "foxes"}
	if len(got) != len(want) {
		t.Fatalf("tokens = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tokens = %v, want %v", got, want)
		}
	}
}

func TestTokenizeEmpty(t *testing.T) {
	if got := Tokenize("  ... !!"); len(got) != 0 {
		t.Fatalf("tokens = %v", got)
	}
}

func buildSmallIndex() *Index {
	ix := NewIndex()
	ix.Add("go concurrency channels goroutines select")  // 0
	ix.Add("go garbage collector performance tuning")    // 1
	ix.Add("database transactions isolation levels")     // 2
	ix.Add("go channels channels channels buffering")    // 3
	ix.Add("distributed database replication consensus") // 4
	return ix
}

func TestIndexBasics(t *testing.T) {
	ix := buildSmallIndex()
	if ix.NumDocs() != 5 {
		t.Fatalf("NumDocs = %d", ix.NumDocs())
	}
	if ix.DocLen(0) != 5 {
		t.Fatalf("DocLen = %d", ix.DocLen(0))
	}
	if _, ok := ix.TermID("channels"); !ok {
		t.Fatal("vocab missing term")
	}
	if _, ok := ix.TermID("nonexistent"); ok {
		t.Fatal("phantom term")
	}
}

func TestSearchRanking(t *testing.T) {
	ix := buildSmallIndex()
	q := ix.ParseQuery("go channels")
	hits := ix.Search(q, 10)
	if len(hits) == 0 {
		t.Fatal("no hits")
	}
	// Doc 3 (channels x3 + go) and doc 0 (channels + go) must beat doc 1
	// (only "go").
	pos := map[int]int{}
	for i, h := range hits {
		pos[h.Doc] = i
	}
	if pos[3] > pos[1] || pos[0] > pos[1] {
		t.Fatalf("ranking wrong: %v", hits)
	}
	// Scores strictly descending or tie-broken by doc.
	for i := 1; i < len(hits); i++ {
		if hits[i].Score > hits[i-1].Score {
			t.Fatalf("hits not sorted: %v", hits)
		}
	}
}

func TestSearchTopKCut(t *testing.T) {
	ix := buildSmallIndex()
	q := ix.ParseQuery("go database channels")
	hits := ix.Search(q, 2)
	if len(hits) != 2 {
		t.Fatalf("k not honored: %v", hits)
	}
}

func TestSearchUnknownTerms(t *testing.T) {
	ix := buildSmallIndex()
	q := ix.ParseQuery("zzz qqq")
	if len(q.Terms) != 0 {
		t.Fatal("OOV terms kept")
	}
	if hits := ix.Search(q, 5); len(hits) != 0 {
		t.Fatalf("hits for empty query: %v", hits)
	}
}

func TestScoreDocMatchesSearch(t *testing.T) {
	ix := buildSmallIndex()
	q := ix.ParseQuery("go channels performance")
	hits := ix.Search(q, 10)
	for _, h := range hits {
		if s := ix.ScoreDoc(q, h.Doc); math.Abs(s-h.Score) > 1e-12 {
			t.Fatalf("doc %d: ScoreDoc %v vs Search %v", h.Doc, s, h.Score)
		}
	}
	if s := ix.ScoreDoc(q, 2); s != 0 {
		t.Fatalf("non-matching doc scored %v", s)
	}
}

func TestIDFRareBeatsCommon(t *testing.T) {
	ix := buildSmallIndex()
	goID, _ := ix.TermID("go")
	consID, _ := ix.TermID("consensus")
	if ix.IDF(consID) <= ix.IDF(goID) {
		t.Fatalf("idf(rare)=%v <= idf(common)=%v", ix.IDF(consID), ix.IDF(goID))
	}
}

func TestUpdateChangesSearch(t *testing.T) {
	ix := buildSmallIndex()
	q := ix.ParseQuery("consensus")
	before := ix.Search(q, 10)
	if len(before) != 1 || before[0].Doc != 4 {
		t.Fatalf("before = %v", before)
	}
	ix.Update(2, "consensus protocols paxos raft consensus")
	after := ix.Search(q, 10)
	if len(after) != 2 {
		t.Fatalf("after = %v", after)
	}
	// Doc 2 now mentions consensus twice in 5 tokens; should rank first.
	if after[0].Doc != 2 {
		t.Fatalf("updated doc not ranked first: %v", after)
	}
}

func TestDeleteRemovesFromSearch(t *testing.T) {
	ix := buildSmallIndex()
	ix.Delete(3)
	if ix.NumDocs() != 4 {
		t.Fatalf("NumDocs = %d", ix.NumDocs())
	}
	q := ix.ParseQuery("channels")
	for _, h := range ix.Search(q, 10) {
		if h.Doc == 3 {
			t.Fatal("deleted doc still retrieved")
		}
	}
	if ix.Alive(3) {
		t.Fatal("doc 3 should be dead")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("double delete should panic")
		}
	}()
	ix.Delete(3)
}

func TestFeatureSource(t *testing.T) {
	ix := NewIndex()
	ix.Add("alpha beta alpha")
	fs := FeatureSource{Ix: ix}
	if fs.NumPoints() != 1 || fs.NumFeatures() != 2 {
		t.Fatalf("shape = %d,%d", fs.NumPoints(), fs.NumFeatures())
	}
	cells := fs.Features(0)
	if len(cells) != 2 {
		t.Fatalf("cells = %v", cells)
	}
	var alphaCount float64
	alphaID, _ := ix.TermID("alpha")
	for _, c := range cells {
		if c.Col == alphaID {
			alphaCount = c.Val
		}
	}
	if alphaCount != 2 {
		t.Fatalf("alpha count = %v", alphaCount)
	}
}

func TestAggregatePageMerges(t *testing.T) {
	ix := NewIndex()
	ix.Add("alpha beta")
	ix.Add("alpha gamma gamma")
	ap := aggregatePage(ix, 3, []int{0, 1})
	if ap.GroupID != 3 || ap.Len != 5 {
		t.Fatalf("ap = %+v", ap)
	}
	want := map[string]int32{"alpha": 2, "beta": 1, "gamma": 2}
	for _, e := range ap.Terms {
		if want[ix.terms[e.Term]] != e.Freq {
			t.Fatalf("term %q freq %d", ix.terms[e.Term], e.Freq)
		}
	}
}

func TestAggregatedPageScoreSingletonEqualsDoc(t *testing.T) {
	ix := buildSmallIndex()
	q := ix.ParseQuery("go channels")
	ap := aggregatePage(ix, 0, []int{3})
	if d := math.Abs(ap.Score(ix, q) - ix.ScoreDoc(q, 3)); d > 1e-12 {
		t.Fatalf("singleton aggregate score differs by %v", d)
	}
}

// topicCorpus builds a corpus of nDocs documents over nTopics topics, each
// topic with its own characteristic vocabulary plus shared background
// words.
func topicCorpus(rng *stats.RNG, nDocs, nTopics int) ([]string, []int) {
	docs := make([]string, nDocs)
	topics := make([]int, nDocs)
	for d := 0; d < nDocs; d++ {
		topic := d % nTopics
		topics[d] = topic
		var sb strings.Builder
		for w := 0; w < 30; w++ {
			if rng.Float64() < 0.7 {
				fmt.Fprintf(&sb, "topic%dword%d ", topic, rng.Intn(25))
			} else {
				fmt.Fprintf(&sb, "common%d ", rng.Intn(40))
			}
		}
		docs[d] = sb.String()
	}
	return docs, topics
}

func buildTopicComponent(t *testing.T, rng *stats.RNG, nDocs int) (*Component, []int) {
	t.Helper()
	docs, topics := topicCorpus(rng, nDocs, 4)
	ix := NewIndex()
	for _, d := range docs {
		ix.Add(d)
	}
	c, err := BuildComponent(ix, synopsis.Config{
		SVD:              svd.Config{Dims: 3, Epochs: 10, Seed: 9},
		CompressionRatio: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, topics
}

func TestEngineConvergesToExact(t *testing.T) {
	rng := stats.NewRNG(1)
	c, _ := buildTopicComponent(t, rng, 300)
	q := c.Ix.ParseQuery("topic1word3 topic1word7 common5")
	e := NewEngine(c, q)
	e.ProcessSynopsis()
	for g := range c.Aggs {
		e.ProcessSet(g)
	}
	got := e.TopK(10)
	want := ExactTopK(c, q, 10)
	if len(got) != len(want) {
		t.Fatalf("lengths %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Doc != want[i].Doc || math.Abs(got[i].Score-want[i].Score) > 1e-9 {
			t.Fatalf("hit %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestEngineSynopsisOnlyBeatsRandom(t *testing.T) {
	rng := stats.NewRNG(2)
	c, _ := buildTopicComponent(t, rng, 400)
	var synOverlap, randOverlap stats.Summary
	for trial := 0; trial < 20; trial++ {
		topic := trial % 4
		q := c.Ix.ParseQuery(fmt.Sprintf("topic%dword%d topic%dword%d", topic, rng.Intn(25), topic, rng.Intn(25)))
		if len(q.Terms) == 0 {
			continue
		}
		exact := ExactTopK(c, q, 10)
		if len(exact) == 0 {
			continue
		}
		e := NewEngine(c, q)
		e.ProcessSynopsis()
		synOverlap.Add(TopKOverlap(exact, e.TopK(10)))
		// Random baseline: first 10 doc ids.
		var random []Hit
		for d := 0; d < 10; d++ {
			random = append(random, Hit{Doc: d})
		}
		randOverlap.Add(TopKOverlap(exact, random))
	}
	if synOverlap.Mean() <= randOverlap.Mean() {
		t.Fatalf("synopsis-only overlap %v not above random %v", synOverlap.Mean(), randOverlap.Mean())
	}
}

func TestEngineProcessSetIdempotent(t *testing.T) {
	rng := stats.NewRNG(3)
	c, _ := buildTopicComponent(t, rng, 200)
	q := c.Ix.ParseQuery("topic0word1 topic0word2")
	e := NewEngine(c, q)
	e.ProcessSynopsis()
	e.ProcessSet(0)
	n := len(e.scored)
	e.ProcessSet(0)
	if len(e.scored) != n {
		t.Fatal("double ProcessSet duplicated hits")
	}
}

func TestComponentApplyChanges(t *testing.T) {
	rng := stats.NewRNG(4)
	c, _ := buildTopicComponent(t, rng, 300)
	newDoc := c.Ix.Add("topic0word1 topic0word2 freshpage")
	st, err := c.ApplyChanges([]synopsis.Change{{
		Kind:  synopsis.Add,
		Cells: FeatureSource{Ix: c.Ix}.Features(newDoc),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if st.GroupsKept == 0 {
		t.Fatal("no aggregates survived a single add")
	}
	// The new page must be in exactly one group.
	n := 0
	for _, ap := range c.Aggs {
		for _, d := range ap.Members {
			if d == newDoc {
				n++
			}
		}
	}
	if n != 1 {
		t.Fatalf("new doc in %d groups", n)
	}
}

func TestTopKOverlap(t *testing.T) {
	actual := []Hit{{Doc: 1}, {Doc: 2}, {Doc: 3}, {Doc: 4}}
	retrieved := []Hit{{Doc: 2}, {Doc: 4}, {Doc: 9}}
	if got := TopKOverlap(actual, retrieved); got != 0.5 {
		t.Fatalf("overlap = %v", got)
	}
	if TopKOverlap(nil, retrieved) != 1 {
		t.Fatal("empty actual should be 1")
	}
}

func TestMergeTopK(t *testing.T) {
	a := []Hit{{Doc: 1, Score: 5}, {Doc: 2, Score: 1}}
	b := []Hit{{Doc: 3, Score: 3}}
	got := MergeTopK([][]Hit{a, b}, 2)
	if len(got) != 2 || got[0].Doc != 1 || got[1].Doc != 3 {
		t.Fatalf("merged = %v", got)
	}
}

func TestParseQueryDuplicateTermsBoost(t *testing.T) {
	ix := buildSmallIndex()
	single := ix.ParseQuery("channels")
	double := ix.ParseQuery("channels channels")
	if len(double.Terms) != 2 {
		t.Fatalf("duplicate terms dropped: %v", double.Terms)
	}
	s1 := ix.ScoreDoc(single, 3)
	s2 := ix.ScoreDoc(double, 3)
	if s2 <= s1 {
		t.Fatalf("duplicate query term did not boost: %v vs %v", s2, s1)
	}
}

func TestUpdateIsIdempotentForSameText(t *testing.T) {
	ix := buildSmallIndex()
	q := ix.ParseQuery("go channels")
	before := ix.Search(q, 10)
	ix.Update(0, "go concurrency channels goroutines select")
	after := ix.Search(ix.ParseQuery("go channels"), 10)
	if len(before) != len(after) {
		t.Fatalf("hit count changed: %d vs %d", len(before), len(after))
	}
	for i := range before {
		if before[i].Doc != after[i].Doc {
			t.Fatalf("ranking changed at %d", i)
		}
	}
}

func TestUpdateToEmptyText(t *testing.T) {
	ix := buildSmallIndex()
	ix.Update(3, "")
	if ix.DocLen(3) != 0 {
		t.Fatalf("doc len = %d", ix.DocLen(3))
	}
	q := ix.ParseQuery("channels")
	for _, h := range ix.Search(q, 10) {
		if h.Doc == 3 {
			t.Fatal("emptied doc still matches")
		}
	}
	// The doc remains alive and can be refilled.
	if !ix.Alive(3) {
		t.Fatal("emptied doc died")
	}
	ix.Update(3, "channels again")
	found := false
	for _, h := range ix.Search(ix.ParseQuery("channels"), 10) {
		if h.Doc == 3 {
			found = true
		}
	}
	if !found {
		t.Fatal("refilled doc not found")
	}
}

func TestUpdateDeadDocPanics(t *testing.T) {
	ix := buildSmallIndex()
	ix.Delete(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ix.Update(2, "zombie")
}

func TestScoreDocDeadIsZero(t *testing.T) {
	ix := buildSmallIndex()
	q := ix.ParseQuery("channels")
	ix.Delete(3)
	if s := ix.ScoreDoc(q, 3); s != 0 {
		t.Fatalf("dead doc scored %v", s)
	}
	if s := ix.ScoreDoc(q, 999); s != 0 {
		t.Fatalf("absent doc scored %v", s)
	}
}

func TestMergedPageOutranksWeakPages(t *testing.T) {
	// An aggregated page merging several strong pages should outrank an
	// aggregated page merging unrelated ones for the topic query.
	ix := NewIndex()
	ix.Add("kernel scheduler preemption kernel")
	ix.Add("kernel interrupts kernel locks")
	ix.Add("gardening flowers seeds")
	ix.Add("cooking pasta sauce")
	q := ix.ParseQuery("kernel")
	strong := aggregatePage(ix, 0, []int{0, 1})
	weak := aggregatePage(ix, 1, []int{2, 3})
	if strong.Score(ix, q) <= weak.Score(ix, q) {
		t.Fatal("merged strong page does not outrank weak page")
	}
}

func TestEngineTopKFillerOrdering(t *testing.T) {
	rng := stats.NewRNG(40)
	c, _ := buildTopicComponent(t, rng, 200)
	q := c.Ix.ParseQuery("topic2word1 topic2word2")
	if len(q.Terms) == 0 {
		t.Skip("query terms OOV")
	}
	e := NewEngine(c, q)
	corr := e.ProcessSynopsis()
	hits := e.TopK(10)
	if len(hits) == 0 {
		t.Fatal("no filler hits")
	}
	// Filler hits must be ordered by non-increasing aggregated score.
	for i := 1; i < len(hits); i++ {
		if hits[i].Score > hits[i-1].Score {
			t.Fatalf("filler not ordered: %v", hits)
		}
	}
	// The top filler page must come from the best-ranked group.
	best := 0
	for g := range corr {
		if corr[g] > corr[best] {
			best = g
		}
	}
	inBest := map[int]bool{}
	for _, d := range c.Aggs[best].Members {
		inBest[d] = true
	}
	if !inBest[hits[0].Doc] {
		t.Fatal("top filler page not from the best group")
	}
}
