package textindex

// Reference (naive) implementations of the optimized scoring kernels,
// retained as test-only helpers: the property tests below assert the
// optimized kernels are result-identical on randomized inputs, so the
// fast paths can never silently diverge from the simple semantics.

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"accuracytrader/internal/stats"
)

// naiveSearch is the pre-optimization Search: map accumulators, full
// sort, truncate.
func naiveSearch(ix *Index, q Query, k int) []Hit {
	scores := make(map[int32]float64)
	matched := make(map[int32]int)
	for qi, t := range q.Terms {
		for _, p := range ix.postings.Row(int(t)) {
			scores[p.Doc] += math.Sqrt(float64(p.TF)) * q.idf2[qi]
			matched[p.Doc]++
		}
	}
	hits := make([]Hit, 0, len(scores))
	for doc, s := range scores {
		if !ix.alive[doc] {
			continue
		}
		hits = append(hits, Hit{Doc: int(doc), Score: ix.finalScore(s, matched[doc], len(q.Terms), ix.docLen[doc])})
	}
	naiveSortHits(hits)
	if len(hits) > k {
		hits = hits[:k]
	}
	return hits
}

// naiveSortHits is the pre-optimization sort.Slice ordering.
func naiveSortHits(hits []Hit) {
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].Doc < hits[j].Doc
	})
}

// randomDoc emits a small random document over a shared vocabulary, so
// postings lists overlap heavily.
func randomDoc(rng *stats.RNG) string {
	n := 3 + rng.Intn(25)
	var b []byte
	for i := 0; i < n; i++ {
		b = append(b, fmt.Sprintf("word%d ", rng.Intn(60))...)
	}
	return string(b)
}

func randomQueryText(rng *stats.RNG) string {
	n := 1 + rng.Intn(5)
	var b []byte
	for i := 0; i < n; i++ {
		b = append(b, fmt.Sprintf("word%d ", rng.Intn(60))...)
	}
	return string(b)
}

func assertHitsBitEqual(t *testing.T, got, want []Hit, ctx string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d hits, want %d\n got: %v\nwant: %v", ctx, len(got), len(want), got, want)
	}
	for i := range want {
		if got[i].Doc != want[i].Doc || got[i].Score != want[i].Score {
			t.Fatalf("%s: hit %d differs\n got: %+v\nwant: %+v", ctx, i, got[i], want[i])
		}
	}
}

// TestSearchMatchesNaiveReference checks hits are bit-equal (docs, order
// and scores) between the optimized Search and the naive reference on
// randomized corpora and queries, across several seeds.
func TestSearchMatchesNaiveReference(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		rng := stats.NewRNG(seed)
		ix := NewIndex()
		nDocs := 30 + rng.Intn(120)
		for d := 0; d < nDocs; d++ {
			ix.Add(randomDoc(rng))
		}
		for trial := 0; trial < 40; trial++ {
			q := ix.ParseQuery(randomQueryText(rng))
			k := 1 + rng.Intn(15)
			assertHitsBitEqual(t, ix.Search(q, k), naiveSearch(ix, q, k),
				fmt.Sprintf("seed %d trial %d k %d", seed, trial, k))
		}
	}
}

// TestSearchMatchesNaiveAfterChurn drives the index through
// update/delete churn between comparisons, exercising the CSR stores'
// in-place removals and relocations.
func TestSearchMatchesNaiveAfterChurn(t *testing.T) {
	rng := stats.NewRNG(99)
	ix := NewIndex()
	for d := 0; d < 80; d++ {
		ix.Add(randomDoc(rng))
	}
	for round := 0; round < 30; round++ {
		switch rng.Intn(3) {
		case 0:
			ix.Add(randomDoc(rng))
		case 1:
			d := rng.Intn(ix.NumSlots())
			if ix.Alive(d) {
				ix.Update(d, randomDoc(rng))
			}
		case 2:
			d := rng.Intn(ix.NumSlots())
			if ix.Alive(d) && ix.NumDocs() > 5 {
				ix.Delete(d)
			}
		}
		q := ix.ParseQuery(randomQueryText(rng))
		assertHitsBitEqual(t, ix.Search(q, 10), naiveSearch(ix, q, 10),
			fmt.Sprintf("churn round %d", round))
	}
}

// TestSearchConcurrentMatchesNaive exercises the scratch pool under
// concurrent readers: every goroutine must see results identical to the
// naive reference.
func TestSearchConcurrentMatchesNaive(t *testing.T) {
	rng := stats.NewRNG(7)
	ix := NewIndex()
	for d := 0; d < 100; d++ {
		ix.Add(randomDoc(rng))
	}
	type qk struct {
		q    Query
		want []Hit
	}
	cases := make([]qk, 16)
	for i := range cases {
		q := ix.ParseQuery(randomQueryText(rng))
		cases[i] = qk{q: q, want: naiveSearch(ix, q, 10)}
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for rep := 0; rep < 50; rep++ {
				c := cases[(g+rep)%len(cases)]
				got := ix.Search(c.q, 10)
				if len(got) != len(c.want) {
					done <- fmt.Errorf("goroutine %d: %d hits, want %d", g, len(got), len(c.want))
					return
				}
				for i := range c.want {
					if got[i] != c.want[i] {
						done <- fmt.Errorf("goroutine %d: hit %d = %+v, want %+v", g, i, got[i], c.want[i])
						return
					}
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestSearchIntoReusesBuffer checks the caller-buffer variant returns the
// same hits while reusing capacity.
func TestSearchIntoReusesBuffer(t *testing.T) {
	ix := buildSmallIndex()
	q := ix.ParseQuery("go channels")
	want := ix.Search(q, 10)
	buf := make([]Hit, 0, 32)
	got := ix.SearchInto(buf, q, 10)
	assertHitsBitEqual(t, got, want, "SearchInto")
	if cap(got) != cap(buf) {
		t.Fatalf("buffer not reused: cap %d, want %d", cap(got), cap(buf))
	}
}

// TestIDFNeverNegative is the regression test for the IDF guard:
// deleted-doc churn (here: deleting every document) used to push
// 1+ln(N/(df+1)) to -Inf, and a negative idf² would flip ranking order.
func TestIDFNeverNegative(t *testing.T) {
	ix := NewIndex()
	ix.Add("alpha beta gamma")
	ix.Add("alpha beta")
	ix.Add("alpha")
	for term := int32(0); term < int32(ix.NumTerms()); term++ {
		if idf := ix.IDF(term); idf < 0 || math.IsNaN(idf) {
			t.Fatalf("term %d: idf = %v before churn", term, idf)
		}
	}
	ix.Delete(0)
	ix.Delete(1)
	ix.Delete(2)
	for term := int32(0); term < int32(ix.NumTerms()); term++ {
		if idf := ix.IDF(term); idf < 0 || math.IsNaN(idf) {
			t.Fatalf("term %d: idf = %v after deleting all docs", term, idf)
		}
	}
	// Queries against the emptied index stay well-formed (idf² ≥ 0).
	q := ix.ParseQuery("alpha beta")
	for i, w := range q.idf2 {
		if w < 0 || math.IsNaN(w) {
			t.Fatalf("idf2[%d] = %v", i, w)
		}
	}
	if hits := ix.Search(q, 5); len(hits) != 0 {
		t.Fatalf("hits on empty index: %v", hits)
	}
}

// TestEngineResetReuseMatchesFresh checks a pooled/reset engine produces
// the same results as a freshly allocated one across differing queries
// and components.
func TestEngineResetReuseMatchesFresh(t *testing.T) {
	rng := stats.NewRNG(12)
	c, _ := buildTopicComponent(t, rng, 250)
	reused := GetEngine(c, Query{})
	defer reused.Release()
	for trial := 0; trial < 15; trial++ {
		q := c.Ix.ParseQuery(fmt.Sprintf("topic%dword%d common%d", trial%4, rng.Intn(25), rng.Intn(40)))
		fresh := NewEngine(c, q)
		reused.Reset(c, q)
		corrF := fresh.ProcessSynopsis()
		corrR := reused.ProcessSynopsis()
		if len(corrF) != len(corrR) {
			t.Fatalf("trial %d: corr lengths differ", trial)
		}
		for g := range corrF {
			if corrF[g] != corrR[g] {
				t.Fatalf("trial %d: corr[%d] %v vs %v", trial, g, corrR[g], corrF[g])
			}
		}
		for g := 0; g < len(corrF); g += 2 {
			fresh.ProcessSet(g)
			reused.ProcessSet(g)
		}
		assertHitsBitEqual(t, reused.TopK(10), fresh.TopK(10), fmt.Sprintf("trial %d", trial))
	}
}
