// Package interference models the performance interference from co-located
// MapReduce workloads (paper §4.1: WordCount and Sort jobs replayed from
// the SWIM/Facebook trace with BigDataBench-MT). What the tail-latency
// experiments need from the co-located jobs is their effect: a
// time-varying, bursty, node-specific slowdown of the service components.
// The generator reproduces that effect directly: jobs arrive at each node
// as a Poisson process, job durations are heavy-tailed (lognormal — the
// SWIM Facebook trace is dominated by short jobs with a long tail), and
// each running job contributes a slowdown depending on its class
// (CPU-bound WordCount vs I/O-bound Sort).
package interference
