package interference

import (
	"sort"

	"accuracytrader/internal/stats"
)

// Config shapes the interference workload on one node.
type Config struct {
	// JobsPerSecond is the mean arrival rate of co-located jobs.
	JobsPerSecond float64
	// CPUShare is the fraction of CPU-bound (WordCount-like) jobs; the
	// rest are I/O-bound (Sort-like).
	CPUShare float64
	// MeanDurationMs and DurationSigma parametrize the lognormal job
	// duration (of the underlying normal, in log-space).
	MeanDurationMs float64
	DurationSigma  float64
	// CPUSlow and IOSlow are the per-job slowdown contributions: a node
	// running one CPU job processes service work (1+CPUSlow) times slower.
	CPUSlow float64
	IOSlow  float64
	// MaxSlowdown caps the total node slowdown factor.
	MaxSlowdown float64
}

// DefaultConfig returns the interference intensity used by the
// experiments, calibrated so the time-weighted mean node slowdown is
// ~1.2-1.3 with occasional bursts of several x — co-location that
// perturbs the tail without saturating the nodes by itself.
func DefaultConfig() Config {
	return Config{
		JobsPerSecond:  0.35,
		CPUShare:       0.5,
		MeanDurationMs: 500,
		DurationSigma:  1.1,
		CPUSlow:        0.9,
		IOSlow:         0.5,
		MaxSlowdown:    4,
	}
}

// Trace is a piecewise-constant slowdown function of virtual time for one
// node.
type Trace struct {
	times []float64 // segment start times, ascending; times[0] == 0
	slow  []float64 // slowdown factor of each segment (>= 1)
}

// At returns the node slowdown factor at time t (ms). Times before 0 or
// after the generated horizon clamp to the nearest segment.
func (tr *Trace) At(t float64) float64 {
	if len(tr.times) == 0 {
		return 1
	}
	i := sort.SearchFloat64s(tr.times, t)
	// SearchFloat64s returns the first index with times[i] >= t; the
	// segment covering t starts one earlier unless t hits a boundary.
	if i == len(tr.times) || tr.times[i] > t {
		i--
	}
	if i < 0 {
		i = 0
	}
	return tr.slow[i]
}

// Mean returns the time-weighted mean slowdown over [0, horizon].
func (tr *Trace) Mean(horizon float64) float64 {
	if len(tr.times) == 0 || horizon <= 0 {
		return 1
	}
	total := 0.0
	for i := range tr.times {
		start := tr.times[i]
		if start >= horizon {
			break
		}
		end := horizon
		if i+1 < len(tr.times) && tr.times[i+1] < horizon {
			end = tr.times[i+1]
		}
		total += (end - start) * tr.slow[i]
	}
	return total / horizon
}

// Generate builds a slowdown trace covering [0, horizonMs) for one node.
func Generate(rng *stats.RNG, horizonMs float64, cfg Config) *Trace {
	type edge struct {
		t     float64
		delta float64
	}
	var edges []edge
	// Job arrivals over the horizon (also admit jobs that started before
	// time 0 by extending the generation window backwards one mean
	// duration, so the trace does not start artificially idle).
	lead := cfg.MeanDurationMs * 2
	t := -lead
	for {
		if cfg.JobsPerSecond <= 0 {
			break
		}
		t += rng.Exp(cfg.JobsPerSecond / 1000) // rate per ms
		if t >= horizonMs {
			break
		}
		dur := rng.LogNormal(0, cfg.DurationSigma) * cfg.MeanDurationMs
		slow := cfg.IOSlow
		if rng.Float64() < cfg.CPUShare {
			slow = cfg.CPUSlow
		}
		// Scale the contribution a little per job so bursts differ.
		slow *= 0.5 + rng.Float64()
		edges = append(edges, edge{t: t, delta: slow}, edge{t: t + dur, delta: -slow})
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].t < edges[j].t })
	tr := &Trace{times: []float64{0}, slow: []float64{1}}
	level := 0.0
	for _, e := range edges {
		if e.t < 0 {
			level += e.delta
			tr.slow[0] = clampSlow(1+level, cfg.MaxSlowdown)
			continue
		}
		if e.t >= horizonMs {
			break
		}
		level += e.delta
		s := clampSlow(1+level, cfg.MaxSlowdown)
		if e.t == tr.times[len(tr.times)-1] {
			tr.slow[len(tr.slow)-1] = s
			continue
		}
		tr.times = append(tr.times, e.t)
		tr.slow = append(tr.slow, s)
	}
	return tr
}

func clampSlow(s, max float64) float64 {
	if s < 1 {
		return 1
	}
	if max > 0 && s > max {
		return max
	}
	return s
}

// GenerateNodes builds one independent trace per node, each from a split
// of the base RNG, mirroring the paper's per-node co-location.
func GenerateNodes(rng *stats.RNG, nodes int, horizonMs float64, cfg Config) []*Trace {
	traces := make([]*Trace, nodes)
	for i := range traces {
		traces[i] = Generate(rng.Split(uint64(i)+1), horizonMs, cfg)
	}
	return traces
}
