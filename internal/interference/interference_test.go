package interference

import (
	"testing"

	"accuracytrader/internal/stats"
)

func TestTraceAtPiecewise(t *testing.T) {
	tr := &Trace{times: []float64{0, 10, 20}, slow: []float64{1, 2, 1.5}}
	cases := []struct{ t, want float64 }{
		{-5, 1}, {0, 1}, {9.99, 1}, {10, 2}, {15, 2}, {20, 1.5}, {100, 1.5},
	}
	for _, c := range cases {
		if got := tr.At(c.t); got != c.want {
			t.Fatalf("At(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestTraceAtEmpty(t *testing.T) {
	tr := &Trace{}
	if tr.At(5) != 1 {
		t.Fatal("empty trace should be 1")
	}
}

func TestTraceMean(t *testing.T) {
	tr := &Trace{times: []float64{0, 10}, slow: []float64{1, 3}}
	if got := tr.Mean(20); got != 2 {
		t.Fatalf("Mean = %v", got)
	}
	if got := tr.Mean(10); got != 1 {
		t.Fatalf("Mean(10) = %v", got)
	}
}

func TestGenerateBounds(t *testing.T) {
	rng := stats.NewRNG(1)
	cfg := DefaultConfig()
	tr := Generate(rng, 60000, cfg)
	for _, s := range tr.slow {
		if s < 1 || s > cfg.MaxSlowdown {
			t.Fatalf("slowdown %v out of bounds", s)
		}
	}
	for i := 1; i < len(tr.times); i++ {
		if tr.times[i] <= tr.times[i-1] {
			t.Fatalf("times not increasing at %d", i)
		}
	}
	if tr.times[0] != 0 {
		t.Fatalf("trace must start at 0, got %v", tr.times[0])
	}
}

func TestGenerateProducesVariance(t *testing.T) {
	rng := stats.NewRNG(2)
	tr := Generate(rng, 600000, DefaultConfig())
	// A 10-minute trace should contain both idle (1.0) and slowed
	// segments.
	sawIdle, sawBusy := false, false
	for _, s := range tr.slow {
		if s == 1 {
			sawIdle = true
		}
		if s > 1.3 {
			sawBusy = true
		}
	}
	if !sawIdle || !sawBusy {
		t.Fatalf("trace lacks variance: idle=%v busy=%v (%d segments)", sawIdle, sawBusy, len(tr.slow))
	}
	m := tr.Mean(600000)
	if m < 1.05 || m > 3 {
		t.Fatalf("mean slowdown %v implausible for default config", m)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(stats.NewRNG(3), 60000, DefaultConfig())
	b := Generate(stats.NewRNG(3), 60000, DefaultConfig())
	if len(a.times) != len(b.times) {
		t.Fatal("not deterministic")
	}
	for i := range a.times {
		if a.times[i] != b.times[i] || a.slow[i] != b.slow[i] {
			t.Fatal("not deterministic")
		}
	}
}

func TestGenerateNodesIndependent(t *testing.T) {
	rng := stats.NewRNG(4)
	traces := GenerateNodes(rng, 4, 60000, DefaultConfig())
	if len(traces) != 4 {
		t.Fatalf("traces = %d", len(traces))
	}
	// Different nodes should have different busy patterns.
	same := 0
	for i := 0; i < 100; i++ {
		tm := float64(i) * 600
		if traces[0].At(tm) == traces[1].At(tm) {
			same++
		}
	}
	if same == 100 {
		t.Fatal("node traces identical")
	}
}

func TestZeroRateIsIdle(t *testing.T) {
	cfg := DefaultConfig()
	cfg.JobsPerSecond = 0
	tr := Generate(stats.NewRNG(5), 60000, cfg)
	if tr.At(30000) != 1 {
		t.Fatal("zero-rate interference should be idle")
	}
}
