// Package core implements the online accuracy-aware approximate processing
// module of AccuracyTrader — Algorithm 1 of the paper. A component first
// processes its synopsis, obtaining a fast initial result plus a
// correlation estimate for every aggregated data point; it then improves
// the result by processing the aggregated points' original member sets in
// descending correlation order, until a deadline or a set cap (imax) stops
// it.
//
// The algorithm is generic over the application: collaborative filtering
// and web search plug in through the Engine interface. Time is abstracted
// behind Continue so the exact same loop runs under wall-clock deadlines
// (internal/service) and under the discrete-event simulator's modeled
// budgets (internal/cluster).
package core
