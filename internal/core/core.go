package core

import (
	"sort"
	"time"
)

// Engine is the application-specific side of Algorithm 1. Implementations
// exist for the CF recommender (internal/cf) and the web search engine
// (internal/textindex).
type Engine interface {
	// ProcessSynopsis computes the initial approximate result for the
	// request (Algorithm 1 line 1) and returns, for every aggregated data
	// point, its estimated correlation to the request's result accuracy.
	// The returned result is improved in place by subsequent ProcessSet
	// calls. Implementations may return an internal buffer: the slice is
	// only valid until the engine is reset or released, and Run does not
	// retain it.
	ProcessSynopsis() (correlations []float64)
	// ProcessSet improves the current result with the original data points
	// of the set belonging to aggregated point ag (Algorithm 1 line 7).
	ProcessSet(ag int)
}

// Continue is consulted before each improvement step; processing stops as
// soon as it returns false. setsDone counts the sets already processed.
type Continue func(setsDone int) bool

// Trace records what a Run actually did, for experiments and debugging.
type Trace struct {
	SetsProcessed int   // sets improved before stopping
	Ranking       []int // aggregated point ids in processing order
}

// Run executes Algorithm 1: process the synopsis, rank the aggregated
// points by descending correlation, then improve with each ranked member
// set while cont allows and fewer than imax sets have been processed.
// imax <= 0 means "no cap" (all sets are eligible).
func Run(e Engine, cont Continue, imax int) Trace {
	corr := e.ProcessSynopsis()
	ranking := Rank(corr)
	if imax <= 0 || imax > len(ranking) {
		imax = len(ranking)
	}
	done := 0
	for _, ag := range ranking[:imax] {
		if !cont(done) {
			break
		}
		e.ProcessSet(ag)
		done++
	}
	return Trace{SetsProcessed: done, Ranking: ranking}
}

// Rank returns aggregated point ids sorted by descending correlation
// (Algorithm 1 line 2). Ties break toward the lower id so ranking is
// deterministic.
func Rank(corr []float64) []int {
	ids := make([]int, len(corr))
	for i := range ids {
		ids[i] = i
	}
	sort.SliceStable(ids, func(a, b int) bool { return corr[ids[a]] > corr[ids[b]] })
	return ids
}

// Clock abstracts "elapsed service time since the request arrived"
// (Algorithm 1's l_ela). The wall-clock implementation is used by the live
// runtime; the simulator provides virtual clocks.
type Clock interface {
	Elapsed() time.Duration
}

// WallClock measures elapsed time from a fixed start using the runtime
// monotonic clock.
type WallClock struct{ start time.Time }

// NewWallClock returns a clock whose Elapsed counts from now.
func NewWallClock() *WallClock { return &WallClock{start: time.Now()} }

// Elapsed returns the wall time since the clock was created.
func (w *WallClock) Elapsed() time.Duration { return time.Since(w.start) }

// DeadlineContinue adapts a Clock and a deadline (l_spe) into a Continue:
// improvement proceeds while elapsed time stays below the deadline.
func DeadlineContinue(c Clock, deadline time.Duration) Continue {
	return func(int) bool { return c.Elapsed() < deadline }
}

// BudgetContinue returns a Continue that allows exactly k improvement
// steps. The simulator uses it after converting a time budget into a set
// count with its cost model.
func BudgetContinue(k int) Continue {
	return func(done int) bool { return done < k }
}

// RunWithDeadline is the convenience form used by live services: run
// Algorithm 1 against a wall-clock deadline.
func RunWithDeadline(e Engine, deadline time.Duration, imax int) Trace {
	return Run(e, DeadlineContinue(NewWallClock(), deadline), imax)
}
