package core

import (
	"testing"
	"testing/quick"
	"time"

	"accuracytrader/internal/stats"
)

// fakeEngine records the order in which sets are processed.
type fakeEngine struct {
	corr      []float64
	processed []int
}

func (f *fakeEngine) ProcessSynopsis() []float64 { return f.corr }
func (f *fakeEngine) ProcessSet(ag int)          { f.processed = append(f.processed, ag) }

func TestRankDescending(t *testing.T) {
	got := Rank([]float64{0.2, 0.9, 0.5, 0.9})
	want := []int{1, 3, 2, 0} // stable: id 1 before id 3 on tie
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Rank = %v, want %v", got, want)
		}
	}
}

func TestRankEmpty(t *testing.T) {
	if got := Rank(nil); len(got) != 0 {
		t.Fatalf("Rank(nil) = %v", got)
	}
}

func TestRunProcessesInCorrelationOrder(t *testing.T) {
	e := &fakeEngine{corr: []float64{0.1, 0.8, 0.4}}
	tr := Run(e, BudgetContinue(3), 0)
	want := []int{1, 2, 0}
	if tr.SetsProcessed != 3 {
		t.Fatalf("SetsProcessed = %d", tr.SetsProcessed)
	}
	for i := range want {
		if e.processed[i] != want[i] {
			t.Fatalf("order = %v, want %v", e.processed, want)
		}
	}
}

func TestRunHonorsBudget(t *testing.T) {
	e := &fakeEngine{corr: []float64{0.1, 0.8, 0.4, 0.6}}
	tr := Run(e, BudgetContinue(2), 0)
	if tr.SetsProcessed != 2 || len(e.processed) != 2 {
		t.Fatalf("budget violated: %v", e.processed)
	}
	if e.processed[0] != 1 || e.processed[1] != 3 {
		t.Fatalf("top-2 sets wrong: %v", e.processed)
	}
}

func TestRunHonorsIMax(t *testing.T) {
	e := &fakeEngine{corr: []float64{0.1, 0.8, 0.4, 0.6}}
	tr := Run(e, BudgetContinue(100), 3)
	if tr.SetsProcessed != 3 {
		t.Fatalf("imax violated: processed %d", tr.SetsProcessed)
	}
	// imax larger than the set count must not panic and processes all.
	e2 := &fakeEngine{corr: []float64{0.3, 0.1}}
	tr2 := Run(e2, BudgetContinue(100), 99)
	if tr2.SetsProcessed != 2 {
		t.Fatalf("processed %d of 2 sets", tr2.SetsProcessed)
	}
}

func TestRunZeroBudgetStillProducesInitialResult(t *testing.T) {
	// With no time for improvement, the synopsis-based initial result is
	// all that's produced — Algorithm 1 always returns a result.
	e := &fakeEngine{corr: []float64{0.5, 0.9}}
	tr := Run(e, BudgetContinue(0), 0)
	if tr.SetsProcessed != 0 || len(e.processed) != 0 {
		t.Fatalf("expected no sets processed, got %v", e.processed)
	}
	if len(tr.Ranking) != 2 {
		t.Fatalf("ranking missing: %v", tr.Ranking)
	}
}

func TestRunRankingIsPermutationProperty(t *testing.T) {
	rng := stats.NewRNG(1)
	f := func(seed uint32, n uint8) bool {
		r := rng.Split(uint64(seed))
		m := int(n%50) + 1
		corr := make([]float64, m)
		for i := range corr {
			corr[i] = r.Float64()
		}
		e := &fakeEngine{corr: corr}
		tr := Run(e, BudgetContinue(m), 0)
		if len(tr.Ranking) != m {
			return false
		}
		seen := make([]bool, m)
		for _, id := range tr.Ranking {
			if id < 0 || id >= m || seen[id] {
				return false
			}
			seen[id] = true
		}
		// Correlations must be non-increasing along the ranking.
		for i := 1; i < m; i++ {
			if corr[tr.Ranking[i-1]] < corr[tr.Ranking[i]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlineContinueStops(t *testing.T) {
	c := &manualClock{}
	cont := DeadlineContinue(c, 10*time.Millisecond)
	if !cont(0) {
		t.Fatal("should continue before deadline")
	}
	c.t = 11 * time.Millisecond
	if cont(1) {
		t.Fatal("should stop after deadline")
	}
}

type manualClock struct{ t time.Duration }

func (m *manualClock) Elapsed() time.Duration { return m.t }

func TestWallClockAdvances(t *testing.T) {
	c := NewWallClock()
	a := c.Elapsed()
	time.Sleep(2 * time.Millisecond)
	if b := c.Elapsed(); b <= a {
		t.Fatalf("wall clock did not advance: %v then %v", a, b)
	}
}

func TestRunWithDeadlineProcessesSomething(t *testing.T) {
	e := &fakeEngine{corr: []float64{0.4, 0.2, 0.9}}
	tr := RunWithDeadline(e, 50*time.Millisecond, 0)
	if tr.SetsProcessed == 0 {
		t.Fatal("generous deadline processed no sets")
	}
}
