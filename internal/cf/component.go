package cf

import (
	"runtime"
	"slices"
	"sync"

	"accuracytrader/internal/synopsis"
)

// AggregatedUser is one synopsis point: the paper's step-3 aggregation for
// numeric data. Its rating on item i is the mean rating of the member
// users who rated i.
type AggregatedUser struct {
	GroupID int64
	Ratings []Rating // sorted by item
	Mean    float64  // mean of its rating scores
	Members []int
}

// aggregate builds the aggregated user for a member set.
func aggregate(m *Matrix, groupID int64, members []int) AggregatedUser {
	sums := make(map[int32]float64)
	counts := make(map[int32]int)
	for _, u := range members {
		for _, r := range m.Ratings(u) {
			sums[r.Item] += r.Score
			counts[r.Item]++
		}
	}
	ag := AggregatedUser{GroupID: groupID, Members: members}
	for item, s := range sums {
		ag.Ratings = append(ag.Ratings, Rating{Item: item, Score: s / float64(counts[item])})
	}
	sortRatings(ag.Ratings)
	// Sum after sorting: map iteration order must not leak into the mean
	// (floating-point addition is not associative), or aggregation would
	// not be bit-for-bit deterministic.
	total := 0.0
	for _, r := range ag.Ratings {
		total += r.Score
	}
	if len(ag.Ratings) > 0 {
		ag.Mean = total / float64(len(ag.Ratings))
	}
	return ag
}

// sortRatings orders ratings by item. Items are unique within a user or
// aggregate, so the comparator is a total order and the (unstable) sort
// is deterministic.
func sortRatings(rs []Rating) {
	slices.SortFunc(rs, func(a, b Rating) int { return int(a.Item) - int(b.Item) })
}

// Component is one parallel service component of the CF recommender: its
// rating-matrix subset plus the synopsis and cached aggregated users.
type Component struct {
	M    *Matrix
	Syn  *synopsis.Synopsis
	Aggs []AggregatedUser
}

// BuildComponent creates the component's synopsis (offline module) and
// aggregates every group.
func BuildComponent(m *Matrix, cfg synopsis.Config) (*Component, error) {
	syn, err := synopsis.Build(FeatureSource{M: m}, cfg)
	if err != nil {
		return nil, err
	}
	c := &Component{M: m, Syn: syn}
	c.reaggregate(nil)
	return c, nil
}

// reaggregate rebuilds aggregated users, reusing cached ones whose group
// ID survived (prev maps group ID -> cached aggregate).
func (c *Component) reaggregate(prev map[int64]AggregatedUser) {
	c.Aggs = AggregateGroups(c.M, c.Syn.Groups(), prev)
}

// AggregateGroups performs step 3 of synopsis creation (information
// aggregation) for all groups, in parallel across CPU cores — the
// in-process substitute for the paper's Spark-based distributed
// aggregation (§3.1), which exists for the same reason: step 3 is the
// most computation-expensive creation step. Groups present in prev (by
// ID) reuse their cached aggregate.
func AggregateGroups(m *Matrix, groups []synopsis.Group, prev map[int64]AggregatedUser) []AggregatedUser {
	aggs := make([]AggregatedUser, len(groups))
	var todo []int
	for i, g := range groups {
		if ag, ok := prev[g.ID]; ok {
			aggs[i] = ag
			continue
		}
		todo = append(todo, i)
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(todo) {
		workers = len(todo)
	}
	if workers <= 1 {
		for _, i := range todo {
			aggs[i] = aggregate(m, groups[i].ID, groups[i].Members)
		}
		return aggs
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				aggs[i] = aggregate(m, groups[i].ID, groups[i].Members)
			}
		}()
	}
	for _, i := range todo {
		next <- i
	}
	close(next)
	wg.Wait()
	return aggs
}

// ApplyChanges routes input-data changes through the synopsis updater and
// re-aggregates only the groups whose membership changed — the paper's
// incremental synopsis updating. New users must already be in the matrix
// (AddUser) and changed users updated (SetUser) before calling.
func (c *Component) ApplyChanges(changes []synopsis.Change) (synopsis.UpdateStats, error) {
	prev := make(map[int64]AggregatedUser, len(c.Aggs))
	for _, ag := range c.Aggs {
		prev[ag.GroupID] = ag
	}
	st, err := c.Syn.Update(changes)
	if err != nil {
		return st, err
	}
	c.reaggregate(prev)
	return st, nil
}

// SynopsisSize returns the total number of ratings across aggregated
// users — the data volume scanned when processing the synopsis.
func (c *Component) SynopsisSize() int {
	n := 0
	for _, ag := range c.Aggs {
		n += len(ag.Ratings)
	}
	return n
}

// GroupSize returns the number of ratings held by group g's members — the
// data volume scanned when improving with that group (the simulator's cost
// model reads this).
func (c *Component) GroupSize(g int) int {
	n := 0
	for _, u := range c.Aggs[g].Members {
		n += len(c.M.Ratings(u))
	}
	return n
}
