package cf

import (
	"math"
	"testing"
	"testing/quick"

	"accuracytrader/internal/stats"
	"accuracytrader/internal/svd"
	"accuracytrader/internal/synopsis"
)

// testMatrix builds a clustered rating matrix: users in k taste clusters
// rate items near their cluster's preference profile on a 1..5 scale.
func testMatrix(rng *stats.RNG, nUsers, nItems, k int, density float64) (*Matrix, []int) {
	profiles := make([][]float64, k)
	for p := range profiles {
		prof := make([]float64, nItems)
		for i := range prof {
			prof[i] = 1 + 4*rng.Float64()
		}
		profiles[p] = prof
	}
	m := NewMatrix(nItems)
	clusters := make([]int, nUsers)
	for u := 0; u < nUsers; u++ {
		cl := u % k
		clusters[u] = cl
		var rs []Rating
		for i := 0; i < nItems; i++ {
			if rng.Float64() < density {
				s := profiles[cl][i] + rng.Norm(0, 0.3)
				if s < 1 {
					s = 1
				}
				if s > 5 {
					s = 5
				}
				rs = append(rs, Rating{Item: int32(i), Score: s})
			}
		}
		if len(rs) == 0 {
			rs = []Rating{{Item: 0, Score: profiles[cl][0]}}
		}
		m.AddUser(rs)
	}
	return m, clusters
}

func synCfg() synopsis.Config {
	return synopsis.Config{
		SVD:              svd.Config{Dims: 3, Epochs: 10, Seed: 11},
		CompressionRatio: 10,
	}
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(10)
	u := m.AddUser([]Rating{{Item: 5, Score: 4}, {Item: 1, Score: 2}})
	if u != 0 || m.NumUsers() != 1 || m.NumItems() != 10 || m.NumRatings() != 2 {
		t.Fatal("shape wrong")
	}
	rs := m.Ratings(0)
	if rs[0].Item != 1 || rs[1].Item != 5 {
		t.Fatalf("ratings not sorted: %v", rs)
	}
	if m.Mean(0) != 3 {
		t.Fatalf("mean = %v", m.Mean(0))
	}
	if v, ok := m.Rating(0, 5); !ok || v != 4 {
		t.Fatalf("Rating = %v,%v", v, ok)
	}
	if _, ok := m.Rating(0, 7); ok {
		t.Fatal("unrated item should miss")
	}
	m.SetUser(0, []Rating{{Item: 2, Score: 5}})
	if m.NumRatings() != 1 || m.Mean(0) != 5 {
		t.Fatal("SetUser failed")
	}
}

func TestMatrixPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewMatrix(0) },
		func() { NewMatrix(3).SetUser(0, nil) },
		func() { m := NewMatrix(3); m.AddUser([]Rating{{Item: 5, Score: 1}}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestWeightKnown(t *testing.T) {
	a := []Rating{{0, 1}, {1, 2}, {2, 3}}
	b := []Rating{{0, 2}, {1, 4}, {2, 6}}
	if w := Weight(a, b); math.Abs(w-1) > 1e-9 {
		t.Fatalf("perfectly correlated weight = %v", w)
	}
	c := []Rating{{0, 3}, {1, 2}, {2, 1}}
	if w := Weight(a, c); math.Abs(w+1) > 1e-9 {
		t.Fatalf("anti-correlated weight = %v", w)
	}
	// Disjoint items: no co-ratings, weight 0.
	d := []Rating{{7, 5}, {8, 1}}
	if w := Weight(a, d); w != 0 {
		t.Fatalf("disjoint weight = %v", w)
	}
	// Single co-rated item: 0 (fewer than two pairs).
	e := []Rating{{0, 5}}
	if w := Weight(a, e); w != 0 {
		t.Fatalf("single-overlap weight = %v", w)
	}
	if Weight(a, b) != Weight(b, a) {
		t.Fatal("weight not symmetric")
	}
}

func TestFeatureSource(t *testing.T) {
	m := NewMatrix(4)
	m.AddUser([]Rating{{Item: 2, Score: 3.5}, {Item: 0, Score: 1}})
	fs := FeatureSource{M: m}
	if fs.NumPoints() != 1 || fs.NumFeatures() != 4 {
		t.Fatal("adapter shape wrong")
	}
	cells := fs.Features(0)
	if len(cells) != 2 || cells[0].Col != 0 || cells[0].Val != 1 || cells[1].Col != 2 || cells[1].Val != 3.5 {
		t.Fatalf("cells = %v", cells)
	}
}

func TestAggregate(t *testing.T) {
	m := NewMatrix(5)
	m.AddUser([]Rating{{0, 2}, {1, 4}})
	m.AddUser([]Rating{{0, 4}, {2, 1}})
	ag := aggregate(m, 7, []int{0, 1})
	if ag.GroupID != 7 {
		t.Fatal("group id lost")
	}
	want := map[int32]float64{0: 3, 1: 4, 2: 1}
	if len(ag.Ratings) != 3 {
		t.Fatalf("ratings = %v", ag.Ratings)
	}
	for _, r := range ag.Ratings {
		if math.Abs(want[r.Item]-r.Score) > 1e-9 {
			t.Fatalf("item %d score %v, want %v", r.Item, r.Score, want[r.Item])
		}
	}
	if math.Abs(ag.Mean-(3+4+1)/3.0) > 1e-9 {
		t.Fatalf("agg mean = %v", ag.Mean)
	}
}

func TestBuildComponent(t *testing.T) {
	rng := stats.NewRNG(1)
	m, _ := testMatrix(rng, 300, 40, 4, 0.4)
	c, err := BuildComponent(m, synCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Aggs) != c.Syn.NumGroups() {
		t.Fatalf("aggs %d vs groups %d", len(c.Aggs), c.Syn.NumGroups())
	}
	// The synopsis must be much smaller than the input data.
	if c.SynopsisSize() >= m.NumRatings()/2 {
		t.Fatalf("synopsis %d not much smaller than data %d", c.SynopsisSize(), m.NumRatings())
	}
	// GroupSize sums member ratings.
	total := 0
	for g := range c.Aggs {
		total += c.GroupSize(g)
	}
	if total != m.NumRatings() {
		t.Fatalf("group sizes sum to %d, want %d", total, m.NumRatings())
	}
}

func TestApplyChangesReusesAggregates(t *testing.T) {
	rng := stats.NewRNG(2)
	m, _ := testMatrix(rng, 300, 40, 4, 0.4)
	c, err := BuildComponent(m, synCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Add one new user.
	newRatings := []Rating{{Item: 0, Score: 3}, {Item: 5, Score: 4}, {Item: 9, Score: 2}}
	uid := m.AddUser(newRatings)
	st, err := c.ApplyChanges([]synopsis.Change{{
		Kind:  synopsis.Add,
		Cells: FeatureSource{M: m}.Features(uid),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if st.GroupsKept == 0 {
		t.Fatal("no aggregates reused after a single add")
	}
	// Every group's aggregate must match a fresh aggregation.
	for i, g := range c.Syn.Groups() {
		fresh := aggregate(m, g.ID, g.Members)
		if len(fresh.Ratings) != len(c.Aggs[i].Ratings) {
			t.Fatalf("group %d aggregate stale", i)
		}
		for j := range fresh.Ratings {
			if fresh.Ratings[j] != c.Aggs[i].Ratings[j] {
				t.Fatalf("group %d aggregate rating %d stale", i, j)
			}
		}
	}
}

func TestResultMergeAndPredictions(t *testing.T) {
	a := Result{Num: []float64{1, 0}, Den: []float64{2, 0}}
	b := Result{Num: []float64{3, 1}, Den: []float64{2, 2}}
	a.Merge(b)
	p := a.Predictions(3)
	if math.Abs(p[0]-4) > 1e-9 { // 3 + 4/4
		t.Fatalf("p0 = %v", p[0])
	}
	if math.Abs(p[1]-3.5) > 1e-9 { // 3 + 1/2
		t.Fatalf("p1 = %v", p[1])
	}
	// Zero denominator falls back to the active mean.
	z := NewResult(1).Predictions(2.5)
	if z[0] != 2.5 {
		t.Fatalf("fallback = %v", z[0])
	}
}

func TestEngineConvergesToExact(t *testing.T) {
	// The central correctness property: after processing every ranked set,
	// Algorithm 1's result equals exact full computation.
	rng := stats.NewRNG(3)
	m, _ := testMatrix(rng, 250, 40, 4, 0.4)
	c, err := BuildComponent(m, synCfg())
	if err != nil {
		t.Fatal(err)
	}
	req := NewRequest(
		[]Rating{{0, 4}, {3, 2}, {7, 5}, {11, 3}, {15, 4}, {20, 1}, {25, 3}},
		[]int32{1, 2, 5, 30},
	)
	e := NewEngine(c, req)
	corr := e.ProcessSynopsis()
	if len(corr) != len(c.Aggs) {
		t.Fatalf("corr len %d", len(corr))
	}
	for g := range c.Aggs {
		e.ProcessSet(g)
	}
	got := e.Result()
	want := ExactResult(c, req)
	for i := range want.Num {
		if math.Abs(got.Num[i]-want.Num[i]) > 1e-6 || math.Abs(got.Den[i]-want.Den[i]) > 1e-6 {
			t.Fatalf("target %d: got (%v,%v) want (%v,%v)", i, got.Num[i], got.Den[i], want.Num[i], want.Den[i])
		}
	}
}

func TestEngineInitialResultIsUsable(t *testing.T) {
	rng := stats.NewRNG(4)
	m, _ := testMatrix(rng, 250, 40, 4, 0.5)
	c, err := BuildComponent(m, synCfg())
	if err != nil {
		t.Fatal(err)
	}
	req := NewRequest(m.Ratings(0)[:4], []int32{10, 20})
	e := NewEngine(c, req)
	e.ProcessSynopsis()
	preds := e.Result().Predictions(req.ActiveMean())
	for _, p := range preds {
		if math.IsNaN(p) || p < -5 || p > 15 {
			t.Fatalf("implausible initial prediction %v", p)
		}
	}
}

func TestRankedOrderBeatsReverseOrder(t *testing.T) {
	// Processing high-correlation sets first must reach low error sooner
	// than processing them last: this is the paper's key idea.
	rng := stats.NewRNG(5)
	m, clusters := testMatrix(rng, 300, 50, 4, 0.5)
	c, err := BuildComponent(m, synCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Aggs) < 4 {
		t.Skip("too few groups for ordering test")
	}
	// Active user: cluster 0's taste; hide some ratings as ground truth.
	active := m.Ratings(0)
	known := append([]Rating(nil), active[:len(active)/2]...)
	var targets []int32
	var truth []float64
	for _, r := range active[len(active)/2:] {
		targets = append(targets, r.Item)
		truth = append(truth, r.Score)
	}
	_ = clusters
	req := NewRequest(known, targets)

	rmseAfter := func(order []int, k int) float64 {
		e := NewEngine(c, req)
		corr := e.ProcessSynopsis()
		_ = corr
		for _, g := range order[:k] {
			e.ProcessSet(g)
		}
		return RMSE(e.Result().Predictions(req.ActiveMean()), truth)
	}
	eRank := NewEngine(c, req)
	corr := eRank.ProcessSynopsis()
	ranked := make([]int, len(corr))
	reversed := make([]int, len(corr))
	ids := make([]int, len(corr))
	for i := range ids {
		ids[i] = i
	}
	// Sort ids by corr descending (selection).
	for i := range ids {
		best := i
		for j := i + 1; j < len(ids); j++ {
			if corr[ids[j]] > corr[ids[best]] {
				best = j
			}
		}
		ids[i], ids[best] = ids[best], ids[i]
	}
	copy(ranked, ids)
	for i := range ids {
		reversed[i] = ids[len(ids)-1-i]
	}
	k := len(ranked) / 3
	if k == 0 {
		k = 1
	}
	rRanked := rmseAfter(ranked, k)
	rReversed := rmseAfter(reversed, k)
	if rRanked > rReversed+0.05 {
		t.Fatalf("ranked order RMSE %v worse than reversed %v", rRanked, rReversed)
	}
}

func TestRMSE(t *testing.T) {
	if got := RMSE([]float64{1, 2}, []float64{1, 4}); math.Abs(got-math.Sqrt(2)) > 1e-9 {
		t.Fatalf("RMSE = %v", got)
	}
	if !math.IsNaN(RMSE(nil, nil)) {
		t.Fatal("empty RMSE should be NaN")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch should panic")
		}
	}()
	RMSE([]float64{1}, []float64{1, 2})
}

func TestRequestActiveMean(t *testing.T) {
	r := NewRequest([]Rating{{0, 2}, {1, 4}}, nil)
	if r.ActiveMean() != 3 {
		t.Fatalf("mean = %v", r.ActiveMean())
	}
	if (Request{}).ActiveMean() != 0 {
		t.Fatal("empty mean should be 0")
	}
}

func TestEngineWithEmptyActiveRatings(t *testing.T) {
	rng := stats.NewRNG(50)
	m, _ := testMatrix(rng, 100, 30, 4, 0.4)
	c, err := BuildComponent(m, synCfg())
	if err != nil {
		t.Fatal(err)
	}
	req := NewRequest(nil, []int32{1, 2})
	e := NewEngine(c, req)
	corr := e.ProcessSynopsis()
	for _, w := range corr {
		if w != 0 {
			t.Fatalf("empty active user produced correlation %v", w)
		}
	}
	for g := range c.Aggs {
		e.ProcessSet(g)
	}
	preds := e.Result().Predictions(req.ActiveMean())
	for _, p := range preds {
		if math.IsNaN(p) {
			t.Fatal("NaN prediction")
		}
	}
}

func TestPartialProcessingMonotoneTowardsExact(t *testing.T) {
	// Processing more ranked sets must (weakly) reduce the distance of
	// the partial result to the exact result, measured on the
	// accumulators directly.
	rng := stats.NewRNG(51)
	m, _ := testMatrix(rng, 200, 40, 4, 0.5)
	c, err := BuildComponent(m, synCfg())
	if err != nil {
		t.Fatal(err)
	}
	spec := m.Ratings(0)
	req := NewRequest(spec[:len(spec)/2], []int32{spec[len(spec)-1].Item})
	exact := ExactResult(c, req)

	e := NewEngine(c, req)
	corr := e.ProcessSynopsis()
	ranking := make([]int, len(corr))
	for i := range ranking {
		ranking[i] = i
	}
	// Selection sort by correlation descending.
	for i := range ranking {
		best := i
		for j := i + 1; j < len(ranking); j++ {
			if corr[ranking[j]] > corr[ranking[best]] {
				best = j
			}
		}
		ranking[i], ranking[best] = ranking[best], ranking[i]
	}
	prevDist := math.Inf(1)
	checkpoints := []int{0, len(ranking) / 2, len(ranking)}
	done := 0
	for _, cp := range checkpoints {
		for done < cp {
			e.ProcessSet(ranking[done])
			done++
		}
		r := e.Result()
		dist := math.Abs(r.Num[0]-exact.Num[0]) + math.Abs(r.Den[0]-exact.Den[0])
		if dist > prevDist+1e-9 && cp > 0 {
			// Distance can fluctuate per set (a set may overshoot), but
			// by the final checkpoint it must be ~0.
			if cp == len(ranking) {
				t.Fatalf("full processing did not converge: dist=%v", dist)
			}
		}
		prevDist = dist
	}
	if prevDist > 1e-6 {
		t.Fatalf("final distance to exact %v", prevDist)
	}
}

func TestAggregateGroupsParallelMatchesSerial(t *testing.T) {
	rng := stats.NewRNG(52)
	m, _ := testMatrix(rng, 300, 40, 4, 0.4)
	c, err := BuildComponent(m, synCfg())
	if err != nil {
		t.Fatal(err)
	}
	groups := c.Syn.Groups()
	parallel := AggregateGroups(m, groups, nil)
	for i, g := range groups {
		serial := aggregate(m, g.ID, g.Members)
		if len(serial.Ratings) != len(parallel[i].Ratings) {
			t.Fatalf("group %d differs", i)
		}
		for j := range serial.Ratings {
			if serial.Ratings[j] != parallel[i].Ratings[j] {
				t.Fatalf("group %d rating %d differs", i, j)
			}
		}
		if serial.Mean != parallel[i].Mean {
			t.Fatalf("group %d mean differs", i)
		}
	}
}

func TestAggregateGroupsReusesCache(t *testing.T) {
	rng := stats.NewRNG(53)
	m, _ := testMatrix(rng, 200, 30, 4, 0.4)
	c, err := BuildComponent(m, synCfg())
	if err != nil {
		t.Fatal(err)
	}
	groups := c.Syn.Groups()
	// Poison the cache: a cached aggregate must be returned verbatim.
	poisoned := AggregatedUser{GroupID: groups[0].ID, Mean: -42}
	prev := map[int64]AggregatedUser{groups[0].ID: poisoned}
	aggs := AggregateGroups(m, groups, prev)
	if aggs[0].Mean != -42 {
		t.Fatal("cache not reused")
	}
	if len(aggs) > 1 && aggs[1].Mean == -42 {
		t.Fatal("cache leaked to other groups")
	}
}

func TestWeightPropertySymmetricBounded(t *testing.T) {
	rng := stats.NewRNG(54)
	f := func(seed uint32) bool {
		r := rng.Split(uint64(seed))
		mk := func() []Rating {
			var rs []Rating
			n := r.Intn(20) + 1
			for i := 0; i < n; i++ {
				rs = append(rs, Rating{Item: int32(r.Intn(30)), Score: 1 + 4*r.Float64()})
			}
			sortRatings(rs)
			// Dedup items (Weight assumes sorted unique items).
			out := rs[:0]
			var last int32 = -1
			for _, x := range rs {
				if x.Item != last {
					out = append(out, x)
					last = x.Item
				}
			}
			return out
		}
		a, b := mk(), mk()
		w1, w2 := Weight(a, b), Weight(b, a)
		return w1 == w2 && w1 >= -1 && w1 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
