package cf

import "math"

// Request is one recommendation request: an active user's known ratings
// and the target items whose ratings should be predicted. All targets
// share the neighbour weights, so one request processes the component data
// once regardless of the target count.
type Request struct {
	Ratings []Rating // active user's known ratings, sorted by item
	Targets []int32  // items to predict
}

// NewRequest sorts the active ratings and returns a Request.
func NewRequest(ratings []Rating, targets []int32) Request {
	cp := append([]Rating(nil), ratings...)
	sortRatings(cp)
	return Request{Ratings: cp, Targets: targets}
}

// ActiveMean returns the mean of the active user's known ratings.
func (r Request) ActiveMean() float64 {
	if len(r.Ratings) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range r.Ratings {
		s += x.Score
	}
	return s / float64(len(r.Ratings))
}

// Result is a component's partial prediction state: per target item, the
// weighted deviation sum and the weight normalizer. Partial results from
// many components merge by addition, so the composer can combine exact,
// approximate and skipped components uniformly.
type Result struct {
	Num []float64
	Den []float64
}

// NewResult returns a zeroed result for n targets.
func NewResult(n int) Result {
	return Result{Num: make([]float64, n), Den: make([]float64, n)}
}

// Merge adds other into r.
func (r Result) Merge(other Result) {
	for i := range r.Num {
		r.Num[i] += other.Num[i]
		r.Den[i] += other.Den[i]
	}
}

// Predictions converts merged partial results into final predicted
// ratings: activeMean + num/den, falling back to the active mean when no
// neighbour rated the target.
func (r Result) Predictions(activeMean float64) []float64 {
	out := make([]float64, len(r.Num))
	for i := range out {
		if r.Den[i] > 0 {
			out[i] = activeMean + r.Num[i]/r.Den[i]
		} else {
			out[i] = activeMean
		}
	}
	return out
}

// contribute accumulates one neighbour (weight w, neighbour ratings rs,
// neighbour mean) into the result for every target it rated.
func contribute(res Result, targets []int32, w float64, rs []Rating, mean float64, sign float64) {
	if w == 0 {
		return
	}
	aw := math.Abs(w)
	for t, item := range targets {
		// Binary search in the sorted ratings.
		lo, hi := 0, len(rs)
		for lo < hi {
			mid := (lo + hi) / 2
			if rs[mid].Item < item {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(rs) && rs[lo].Item == item {
			res.Num[t] += sign * w * (rs[lo].Score - mean)
			res.Den[t] += sign * aw
		}
	}
}

// Engine runs Algorithm 1 for one CF request on one component. It
// implements core.Engine: ProcessSynopsis predicts from aggregated users
// and returns |weight| correlations; ProcessSet replaces one aggregated
// user's coarse contribution with its member users' exact contributions.
type Engine struct {
	Comp *Component
	Req  Request

	res        Result
	aggWeights []float64
}

// NewEngine prepares an engine for a request.
func NewEngine(c *Component, req Request) *Engine {
	return &Engine{Comp: c, Req: req, res: NewResult(len(req.Targets))}
}

// ProcessSynopsis computes the aggregated-user weights, accumulates their
// contributions as the initial result, and returns the correlation
// estimates (|weight|, per paper §4.2's evaluation of weights as
// correlations).
func (e *Engine) ProcessSynopsis() []float64 {
	m := len(e.Comp.Aggs)
	e.aggWeights = make([]float64, m)
	corr := make([]float64, m)
	for g, ag := range e.Comp.Aggs {
		w := Weight(e.Req.Ratings, ag.Ratings)
		e.aggWeights[g] = w
		corr[g] = math.Abs(w)
		contribute(e.res, e.Req.Targets, w, ag.Ratings, ag.Mean, +1)
	}
	return corr
}

// ProcessSet improves the result with group g's original users: the
// aggregated contribution is retracted and each member user contributes
// with its exact weight (Algorithm 1 line 7).
func (e *Engine) ProcessSet(g int) {
	ag := e.Comp.Aggs[g]
	contribute(e.res, e.Req.Targets, e.aggWeights[g], ag.Ratings, ag.Mean, -1)
	for _, u := range ag.Members {
		rs := e.Comp.M.Ratings(u)
		w := Weight(e.Req.Ratings, rs)
		contribute(e.res, e.Req.Targets, w, rs, e.Comp.M.Mean(u), +1)
	}
}

// Result returns the current partial result.
func (e *Engine) Result() Result { return e.res }

// ExactResult computes the component's exact partial result: every
// original user contributes — the paper's "full computation over the
// entire input data" baseline.
func ExactResult(c *Component, req Request) Result {
	res := NewResult(len(req.Targets))
	for u := 0; u < c.M.NumUsers(); u++ {
		rs := c.M.Ratings(u)
		w := Weight(req.Ratings, rs)
		contribute(res, req.Targets, w, rs, c.M.Mean(u), +1)
	}
	return res
}

// RMSE returns the root-mean-square error between predicted and actual
// ratings (the paper's recommender accuracy metric). It returns NaN for
// empty input.
func RMSE(predicted, actual []float64) float64 {
	if len(predicted) != len(actual) {
		panic("cf: RMSE length mismatch")
	}
	if len(predicted) == 0 {
		return math.NaN()
	}
	se := 0.0
	for i := range predicted {
		d := predicted[i] - actual[i]
		se += d * d
	}
	return math.Sqrt(se / float64(len(predicted)))
}
