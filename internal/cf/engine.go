package cf

import (
	"math"
	"sync"
)

// Request is one recommendation request: an active user's known ratings
// and the target items whose ratings should be predicted. All targets
// share the neighbour weights, so one request processes the component data
// once regardless of the target count.
type Request struct {
	Ratings []Rating // active user's known ratings, sorted by item
	Targets []int32  // items to predict
}

// NewRequest sorts the active ratings and returns a Request.
func NewRequest(ratings []Rating, targets []int32) Request {
	cp := append([]Rating(nil), ratings...)
	sortRatings(cp)
	return Request{Ratings: cp, Targets: targets}
}

// ActiveMean returns the mean of the active user's known ratings.
func (r Request) ActiveMean() float64 {
	if len(r.Ratings) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range r.Ratings {
		s += x.Score
	}
	return s / float64(len(r.Ratings))
}

// Result is a component's partial prediction state: per target item, the
// weighted deviation sum and the weight normalizer. Partial results from
// many components merge by addition, so the composer can combine exact,
// approximate and skipped components uniformly.
type Result struct {
	Num []float64
	Den []float64
}

// NewResult returns a zeroed result for n targets.
func NewResult(n int) Result {
	return Result{Num: make([]float64, n), Den: make([]float64, n)}
}

// Reset re-zeroes the result for n targets, reusing the buffers when
// capacity allows, and returns the (possibly re-anchored) result.
func (r Result) Reset(n int) Result {
	if cap(r.Num) < n {
		return NewResult(n)
	}
	r.Num = r.Num[:n]
	r.Den = r.Den[:n]
	clear(r.Num)
	clear(r.Den)
	return r
}

// Merge adds other into r.
func (r Result) Merge(other Result) {
	for i := range r.Num {
		r.Num[i] += other.Num[i]
		r.Den[i] += other.Den[i]
	}
}

// Predictions converts merged partial results into final predicted
// ratings: activeMean + num/den, falling back to the active mean when no
// neighbour rated the target. The slice is freshly allocated; hot paths
// should use PredictionsInto.
func (r Result) Predictions(activeMean float64) []float64 {
	return r.PredictionsInto(nil, activeMean)
}

// PredictionsInto writes the predictions into dst (reused when capacity
// allows, truncated first) and returns it.
func (r Result) PredictionsInto(dst []float64, activeMean float64) []float64 {
	dst = dst[:0]
	for i := range r.Num {
		if r.Den[i] > 0 {
			dst = append(dst, activeMean+r.Num[i]/r.Den[i])
		} else {
			dst = append(dst, activeMean)
		}
	}
	return dst
}

// targetLookup maps item ids to request target slots in O(1): pos[item]
// holds the first slot predicting that item, next[slot] chains duplicate
// targets of the same item. Entries are validated by an epoch stamp, so
// re-building for a new request costs O(targets), not O(items).
type targetLookup struct {
	pos   []int32
	stamp []uint32
	next  []int32
	epoch uint32
}

// build prepares the lookup for a target list over an nItems item space.
func (tl *targetLookup) build(nItems int, targets []int32) {
	if len(tl.pos) < nItems {
		tl.pos = make([]int32, nItems)
		tl.stamp = make([]uint32, nItems)
		tl.epoch = 0
	}
	tl.epoch++
	if tl.epoch == 0 { // stamp wraparound: invalidate everything explicitly
		clear(tl.stamp)
		tl.epoch = 1
	}
	if cap(tl.next) < len(targets) {
		tl.next = make([]int32, len(targets))
	} else {
		tl.next = tl.next[:len(targets)]
	}
	for t := len(targets) - 1; t >= 0; t-- {
		item := targets[t]
		if item < 0 || int(item) >= nItems {
			// An out-of-range target can never be rated by a neighbour: the
			// slot keeps a zero denominator and predicts the active mean,
			// exactly as the binary-search kernel it replaced behaved.
			tl.next[t] = -1
			continue
		}
		if tl.stamp[item] == tl.epoch {
			tl.next[t] = tl.pos[item]
		} else {
			tl.next[t] = -1
		}
		tl.pos[item] = int32(t)
		tl.stamp[item] = tl.epoch
	}
}

// contribute accumulates one neighbour (weight w, neighbour ratings rs,
// neighbour mean) into the result for every target it rated. Instead of a
// binary search per (neighbour × target), it streams the neighbour's
// ratings once and resolves targets through the O(1) lookup. Each
// (neighbour, target) pair adds exactly the value the reference kernel
// adds, in the same per-slot order, so accumulators stay bit-identical.
func (tl *targetLookup) contribute(res Result, w float64, rs []Rating, mean float64, sign float64) {
	if w == 0 {
		return
	}
	aw := math.Abs(w)
	prev := int32(-1)
	for _, r := range rs {
		// rs is sorted; skip non-first duplicate items so each (neighbour,
		// target) pair contributes once, from the first occurrence — the
		// semantics of the binary-search kernel this replaces (SetUser
		// accepts duplicate items without deduplicating).
		if r.Item == prev {
			continue
		}
		prev = r.Item
		if tl.stamp[r.Item] != tl.epoch {
			continue
		}
		dev := sign * w * (r.Score - mean)
		dden := sign * aw
		for t := tl.pos[r.Item]; t >= 0; t = tl.next[t] {
			res.Num[t] += dev
			res.Den[t] += dden
		}
	}
}

// Engine runs Algorithm 1 for one CF request on one component. It
// implements core.Engine: ProcessSynopsis predicts from aggregated users
// and returns |weight| correlations; ProcessSet replaces one aggregated
// user's coarse contribution with its member users' exact contributions.
type Engine struct {
	Comp *Component
	Req  Request

	res        Result
	aggWeights []float64
	corr       []float64
	lookup     targetLookup
}

// NewEngine prepares an engine for a request.
func NewEngine(c *Component, req Request) *Engine {
	e := &Engine{}
	e.Reset(c, req)
	return e
}

// Reset re-targets the engine at a component and request, reusing all
// internal buffers (result accumulators, weight vectors and the target
// lookup). It makes engines poolable across requests.
func (e *Engine) Reset(c *Component, req Request) {
	e.Comp, e.Req = c, req
	e.res = e.res.Reset(len(req.Targets))
	e.lookup.build(c.M.NumItems(), req.Targets)
}

// enginePool recycles Engines across requests (see GetEngine).
var enginePool = sync.Pool{New: func() any { return new(Engine) }}

// GetEngine returns a pooled engine reset for the request. Release it
// with Engine.Release when the request is finished.
func GetEngine(c *Component, req Request) *Engine {
	e := enginePool.Get().(*Engine)
	e.Reset(c, req)
	return e
}

// Release returns the engine to the pool. The engine, its Result and any
// slice obtained from ProcessSynopsis must not be used afterwards.
func (e *Engine) Release() {
	e.Comp = nil
	e.Req = Request{}
	enginePool.Put(e)
}

// ProcessSynopsis computes the aggregated-user weights, accumulates their
// contributions as the initial result, and returns the correlation
// estimates (|weight|, per paper §4.2's evaluation of weights as
// correlations). The returned slice is owned by the engine and valid
// until the next Reset or Release.
func (e *Engine) ProcessSynopsis() []float64 {
	m := len(e.Comp.Aggs)
	if cap(e.aggWeights) < m {
		e.aggWeights = make([]float64, m)
		e.corr = make([]float64, m)
	} else {
		e.aggWeights = e.aggWeights[:m]
		e.corr = e.corr[:m]
	}
	for g, ag := range e.Comp.Aggs {
		w := Weight(e.Req.Ratings, ag.Ratings)
		e.aggWeights[g] = w
		e.corr[g] = math.Abs(w)
		e.lookup.contribute(e.res, w, ag.Ratings, ag.Mean, +1)
	}
	return e.corr
}

// ProcessSet improves the result with group g's original users: the
// aggregated contribution is retracted and each member user contributes
// with its exact weight (Algorithm 1 line 7).
func (e *Engine) ProcessSet(g int) {
	ag := e.Comp.Aggs[g]
	e.lookup.contribute(e.res, e.aggWeights[g], ag.Ratings, ag.Mean, -1)
	for _, u := range ag.Members {
		rs := e.Comp.M.Ratings(u)
		w := Weight(e.Req.Ratings, rs)
		e.lookup.contribute(e.res, w, rs, e.Comp.M.Mean(u), +1)
	}
}

// Result returns the current partial result. It aliases the engine's
// accumulators: for a pooled engine, copy it or use TakeResult before
// Release.
func (e *Engine) Result() Result { return e.res }

// TakeResult returns the current partial result and detaches it from the
// engine, so it stays valid after Release (the engine's next Reset
// allocates fresh accumulators).
func (e *Engine) TakeResult() Result {
	r := e.res
	e.res = Result{}
	return r
}

// exactLookupPool recycles target lookups for ExactResultInto callers.
var exactLookupPool = sync.Pool{New: func() any { return new(targetLookup) }}

// ExactResult computes the component's exact partial result: every
// original user contributes — the paper's "full computation over the
// entire input data" baseline.
func ExactResult(c *Component, req Request) Result {
	return ExactResultInto(Result{}, c, req)
}

// ExactResultInto is ExactResult accumulating into res's reused buffers
// (re-zeroed first); it returns the (possibly re-anchored) result.
func ExactResultInto(res Result, c *Component, req Request) Result {
	res = res.Reset(len(req.Targets))
	tl := exactLookupPool.Get().(*targetLookup)
	tl.build(c.M.NumItems(), req.Targets)
	for u := 0; u < c.M.NumUsers(); u++ {
		rs := c.M.Ratings(u)
		w := Weight(req.Ratings, rs)
		tl.contribute(res, w, rs, c.M.Mean(u), +1)
	}
	exactLookupPool.Put(tl)
	return res
}

// RMSE returns the root-mean-square error between predicted and actual
// ratings (the paper's recommender accuracy metric). It returns NaN for
// empty input.
func RMSE(predicted, actual []float64) float64 {
	if len(predicted) != len(actual) {
		panic("cf: RMSE length mismatch")
	}
	if len(predicted) == 0 {
		return math.NaN()
	}
	se := 0.0
	for i := range predicted {
		d := predicted[i] - actual[i]
		se += d * d
	}
	return math.Sqrt(se / float64(len(predicted)))
}
