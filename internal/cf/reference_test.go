package cf

// Reference (naive) implementations of the optimized CF kernels, retained
// as test-only helpers: the property tests assert the optimized merge-join
// Weight and the lookup-table contribute are result-identical to the
// simple semantics on randomized inputs.

import (
	"fmt"
	"math"
	"testing"

	"accuracytrader/internal/stats"
	"accuracytrader/internal/vmath"
)

// naiveWeight is the pre-optimization Weight: materialize the co-rated
// pairs, then vmath.Pearson.
func naiveWeight(a, b []Rating) float64 {
	var xs, ys []float64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Item < b[j].Item:
			i++
		case a[i].Item > b[j].Item:
			j++
		default:
			xs = append(xs, a[i].Score)
			ys = append(ys, b[j].Score)
			i++
			j++
		}
	}
	return vmath.Pearson(xs, ys)
}

// naiveContribute is the pre-optimization contribute: a binary search per
// (neighbour × target).
func naiveContribute(res Result, targets []int32, w float64, rs []Rating, mean float64, sign float64) {
	if w == 0 {
		return
	}
	aw := math.Abs(w)
	for t, item := range targets {
		lo, hi := 0, len(rs)
		for lo < hi {
			mid := (lo + hi) / 2
			if rs[mid].Item < item {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(rs) && rs[lo].Item == item {
			res.Num[t] += sign * w * (rs[lo].Score - mean)
			res.Den[t] += sign * aw
		}
	}
}

// naiveExactResult composes naiveWeight + naiveContribute over all users.
func naiveExactResult(c *Component, req Request) Result {
	res := NewResult(len(req.Targets))
	for u := 0; u < c.M.NumUsers(); u++ {
		rs := c.M.Ratings(u)
		w := naiveWeight(req.Ratings, rs)
		naiveContribute(res, req.Targets, w, rs, c.M.Mean(u), +1)
	}
	return res
}

// randomRatings emits a sorted, item-unique rating vector.
func randomRatings(rng *stats.RNG, nItems int) []Rating {
	var rs []Rating
	for i := 0; i < nItems; i++ {
		if rng.Float64() < 0.3 {
			rs = append(rs, Rating{Item: int32(i), Score: 1 + 4*rng.Float64()})
		}
	}
	return rs
}

// TestWeightMatchesNaiveReference checks the zero-alloc merge-join Weight
// is bit-identical to the materializing reference on randomized vectors.
func TestWeightMatchesNaiveReference(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		rng := stats.NewRNG(seed)
		for trial := 0; trial < 300; trial++ {
			a := randomRatings(rng, 5+rng.Intn(60))
			b := randomRatings(rng, 5+rng.Intn(60))
			got, want := Weight(a, b), naiveWeight(a, b)
			if got != want {
				t.Fatalf("seed %d trial %d: Weight %v, naive %v", seed, trial, got, want)
			}
		}
	}
}

// TestContributeMatchesNaiveReference checks the target-lookup contribute
// accumulates bit-identically to the binary-search reference, including
// duplicate target items.
func TestContributeMatchesNaiveReference(t *testing.T) {
	rng := stats.NewRNG(2)
	const nItems = 40
	var tl targetLookup
	for trial := 0; trial < 300; trial++ {
		nT := 1 + rng.Intn(8)
		targets := make([]int32, nT)
		for i := range targets {
			targets[i] = int32(rng.Intn(nItems))
		}
		// Every other trial: force duplicate targets.
		if trial%2 == 0 && nT > 1 {
			targets[nT-1] = targets[0]
		}
		tl.build(nItems, targets)
		got := NewResult(nT)
		want := NewResult(nT)
		for n := 0; n < 5; n++ {
			rs := randomRatings(rng, nItems)
			w := rng.Norm(0, 0.5)
			mean := 1 + 4*rng.Float64()
			sign := 1.0
			if rng.Float64() < 0.3 {
				sign = -1
			}
			tl.contribute(got, w, rs, mean, sign)
			naiveContribute(want, targets, w, rs, mean, sign)
		}
		for i := range want.Num {
			if got.Num[i] != want.Num[i] || got.Den[i] != want.Den[i] {
				t.Fatalf("trial %d target %d: got (%v,%v) want (%v,%v)",
					trial, i, got.Num[i], got.Den[i], want.Num[i], want.Den[i])
			}
		}
	}
}

// TestContributeDuplicateNeighbourItems checks rating vectors holding
// duplicate items (accepted by SetUser) contribute once per (neighbour,
// target) from the first occurrence, matching the binary-search kernel.
func TestContributeDuplicateNeighbourItems(t *testing.T) {
	targets := []int32{3, 8}
	rs := []Rating{{Item: 3, Score: 4}, {Item: 3, Score: 1}, {Item: 8, Score: 2}}
	var tl targetLookup
	tl.build(10, targets)
	got := NewResult(2)
	want := NewResult(2)
	tl.contribute(got, 0.7, rs, 2.5, +1)
	naiveContribute(want, targets, 0.7, rs, 2.5, +1)
	for i := range want.Num {
		if got.Num[i] != want.Num[i] || got.Den[i] != want.Den[i] {
			t.Fatalf("target %d: got (%v,%v) want (%v,%v)", i, got.Num[i], got.Den[i], want.Num[i], want.Den[i])
		}
	}
}

// TestEngineMatchesNaivePipeline runs the full Algorithm 1 pipeline on
// randomized components and checks predictions against the naive kernels
// within 1e-12 at every processing depth.
func TestEngineMatchesNaivePipeline(t *testing.T) {
	for seed := uint64(10); seed <= 12; seed++ {
		rng := stats.NewRNG(seed)
		m, _ := testMatrix(rng, 150, 30, 4, 0.4)
		c, err := BuildComponent(m, synCfg())
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 10; trial++ {
			known := randomRatings(rng, 30)
			nT := 1 + rng.Intn(5)
			targets := make([]int32, nT)
			for i := range targets {
				targets[i] = int32(rng.Intn(30))
			}
			req := NewRequest(known, targets)

			e := GetEngine(c, req)
			naiveRes := NewResult(nT)
			corr := e.ProcessSynopsis()
			for g, ag := range c.Aggs {
				w := naiveWeight(req.Ratings, ag.Ratings)
				if math.Abs(corr[g]-math.Abs(w)) > 1e-15 {
					t.Fatalf("seed %d trial %d: corr[%d] %v vs naive %v", seed, trial, g, corr[g], math.Abs(w))
				}
				naiveContribute(naiveRes, req.Targets, w, ag.Ratings, ag.Mean, +1)
			}
			checkResultsClose(t, e.Result(), naiveRes, 1e-12, fmt.Sprintf("seed %d trial %d synopsis", seed, trial))
			for g := range c.Aggs {
				e.ProcessSet(g)
				ag := c.Aggs[g]
				naiveContribute(naiveRes, req.Targets, e.aggWeights[g], ag.Ratings, ag.Mean, -1)
				for _, u := range ag.Members {
					rs := c.M.Ratings(u)
					naiveContribute(naiveRes, req.Targets, naiveWeight(req.Ratings, rs), rs, c.M.Mean(u), +1)
				}
			}
			checkResultsClose(t, e.Result(), naiveRes, 1e-12, fmt.Sprintf("seed %d trial %d full", seed, trial))

			am := req.ActiveMean()
			got := e.Result().Predictions(am)
			want := naiveRes.Predictions(am)
			for i := range want {
				if math.Abs(got[i]-want[i]) > 1e-12 {
					t.Fatalf("seed %d trial %d: prediction %d = %v, naive %v", seed, trial, i, got[i], want[i])
				}
			}
			e.Release()
		}
	}
}

func checkResultsClose(t *testing.T, got, want Result, tol float64, ctx string) {
	t.Helper()
	for i := range want.Num {
		if math.Abs(got.Num[i]-want.Num[i]) > tol || math.Abs(got.Den[i]-want.Den[i]) > tol {
			t.Fatalf("%s: target %d got (%v,%v) want (%v,%v)",
				ctx, i, got.Num[i], got.Den[i], want.Num[i], want.Den[i])
		}
	}
}

// TestExactResultMatchesNaive checks the streaming CSR ExactResult (and
// its buffer-reusing variant) against the naive composition.
func TestExactResultMatchesNaive(t *testing.T) {
	rng := stats.NewRNG(21)
	m, _ := testMatrix(rng, 200, 35, 4, 0.4)
	c, err := BuildComponent(m, synCfg())
	if err != nil {
		t.Fatal(err)
	}
	var reused Result
	for trial := 0; trial < 20; trial++ {
		known := randomRatings(rng, 35)
		targets := []int32{int32(rng.Intn(35)), int32(rng.Intn(35)), int32(rng.Intn(35))}
		req := NewRequest(known, targets)
		want := naiveExactResult(c, req)
		got := ExactResult(c, req)
		checkResultsClose(t, got, want, 0, fmt.Sprintf("trial %d fresh", trial))
		reused = ExactResultInto(reused, c, req)
		checkResultsClose(t, reused, want, 0, fmt.Sprintf("trial %d reused", trial))
	}
}

// TestEngineResetReuseMatchesFresh checks a pooled/reset CF engine
// produces results identical to a fresh engine across varying requests.
func TestEngineResetReuseMatchesFresh(t *testing.T) {
	rng := stats.NewRNG(31)
	m, _ := testMatrix(rng, 150, 30, 4, 0.5)
	c, err := BuildComponent(m, synCfg())
	if err != nil {
		t.Fatal(err)
	}
	reused := GetEngine(c, NewRequest(nil, nil))
	defer reused.Release()
	for trial := 0; trial < 15; trial++ {
		req := NewRequest(randomRatings(rng, 30), []int32{int32(rng.Intn(30)), int32(rng.Intn(30))})
		fresh := NewEngine(c, req)
		reused.Reset(c, req)
		fresh.ProcessSynopsis()
		reused.ProcessSynopsis()
		for g := 0; g < len(c.Aggs); g += 2 {
			fresh.ProcessSet(g)
			reused.ProcessSet(g)
		}
		checkResultsClose(t, reused.Result(), fresh.Result(), 0, fmt.Sprintf("trial %d", trial))
	}
}

// TestOutOfRangeTargetsPredictActiveMean is the regression test for the
// target-lookup guard: a target item outside the component's item space
// must not panic (the replaced binary-search kernel degraded gracefully)
// and must fall back to the active mean.
func TestOutOfRangeTargetsPredictActiveMean(t *testing.T) {
	rng := stats.NewRNG(61)
	m, _ := testMatrix(rng, 100, 20, 4, 0.5)
	c, err := BuildComponent(m, synCfg())
	if err != nil {
		t.Fatal(err)
	}
	req := NewRequest(m.Ratings(0)[:3], []int32{5, int32(m.NumItems()), -1, 7})
	e := NewEngine(c, req)
	e.ProcessSynopsis()
	for g := range c.Aggs {
		e.ProcessSet(g)
	}
	am := req.ActiveMean()
	preds := e.Result().Predictions(am)
	if preds[1] != am || preds[2] != am {
		t.Fatalf("out-of-range targets predicted (%v, %v), want active mean %v", preds[1], preds[2], am)
	}
	if math.IsNaN(preds[0]) || math.IsNaN(preds[3]) {
		t.Fatal("in-range targets broken by out-of-range neighbours")
	}
}

// TestPredictionsIntoMatchesPredictions checks the buffer-reusing
// prediction path.
func TestPredictionsIntoMatchesPredictions(t *testing.T) {
	r := Result{Num: []float64{1, 0, -2}, Den: []float64{2, 0, 4}}
	want := r.Predictions(3)
	buf := make([]float64, 0, 8)
	got := r.PredictionsInto(buf, 3)
	if len(got) != len(want) {
		t.Fatalf("lengths differ")
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pred %d: %v vs %v", i, got[i], want[i])
		}
	}
	if cap(got) != cap(buf) {
		t.Fatalf("buffer not reused")
	}
}
