// Package cf implements the user-based collaborative-filtering recommender
// service of the paper (§3.2): a user-item rating matrix, Pearson
// similarity weights, weighted-average rating prediction, and the
// AccuracyTrader integration — aggregated users built from synopsis groups
// and an Algorithm 1 engine that first predicts from aggregated users and
// then refines with the original users of the most correlated groups.
package cf
