package cf

// DeltaScorer folds users that are not (yet) in a component's matrix —
// streaming-ingest delta users awaiting compaction — into a partial
// Result with exactly the reference kernel's per-user contribution:
// Pearson weight against the active ratings, then the epoch-stamped
// target-lookup accumulation ExactResultInto performs for every matrix
// user. Scoring delta users through the same kernel keeps a live
// snapshot's exact path bit-identical to rebuilding the matrix with the
// delta users appended. A DeltaScorer is reusable across requests
// (Bind re-stamps the lookup in O(targets)) and allocation-free once
// its buffers have grown to the working set.
type DeltaScorer struct {
	lookup targetLookup
}

// Bind prepares the scorer for one request's targets over an item
// space of nItems items.
func (d *DeltaScorer) Bind(nItems int, targets []int32) {
	d.lookup.build(nItems, targets)
}

// Add accumulates one delta user — ratings sorted by item, mean
// precomputed as Matrix.SetUser computes it — into res.
func (d *DeltaScorer) Add(res Result, active []Rating, rs []Rating, mean float64) {
	w := Weight(active, rs)
	d.lookup.contribute(res, w, rs, mean, +1)
}
