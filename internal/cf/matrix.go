// Package cf implements the user-based collaborative-filtering recommender
// service of the paper (§3.2): a user-item rating matrix, Pearson
// similarity weights, weighted-average rating prediction, and the
// AccuracyTrader integration — aggregated users built from synopsis groups
// and an Algorithm 1 engine that first predicts from aggregated users and
// then refines with the original users of the most correlated groups.
package cf

import (
	"sort"

	"accuracytrader/internal/svd"
	"accuracytrader/internal/vmath"
)

// Rating is one (item, score) pair of a user.
type Rating struct {
	Item  int32
	Score float64
}

// Matrix is the user-item rating matrix of one service component's data
// subset. User ratings are kept sorted by item for merge-join weight
// computation.
type Matrix struct {
	users  [][]Rating
	means  []float64
	nItems int
}

// NewMatrix returns an empty matrix over nItems items.
func NewMatrix(nItems int) *Matrix {
	if nItems <= 0 {
		panic("cf: non-positive item count")
	}
	return &Matrix{nItems: nItems}
}

// AddUser appends a user with the given ratings and returns the user id.
func (m *Matrix) AddUser(rs []Rating) int {
	id := len(m.users)
	m.users = append(m.users, nil)
	m.means = append(m.means, 0)
	m.SetUser(id, rs)
	return id
}

// SetUser replaces user u's ratings (an input-data change).
func (m *Matrix) SetUser(u int, rs []Rating) {
	if u < 0 || u >= len(m.users) {
		panic("cf: SetUser out of range")
	}
	cp := append([]Rating(nil), rs...)
	sort.Slice(cp, func(i, j int) bool { return cp[i].Item < cp[j].Item })
	sum := 0.0
	for _, r := range cp {
		if r.Item < 0 || int(r.Item) >= m.nItems {
			panic("cf: rating item out of range")
		}
		sum += r.Score
	}
	m.users[u] = cp
	if len(cp) > 0 {
		m.means[u] = sum / float64(len(cp))
	} else {
		m.means[u] = 0
	}
}

// NumUsers returns the number of users.
func (m *Matrix) NumUsers() int { return len(m.users) }

// NumItems returns the item-space size.
func (m *Matrix) NumItems() int { return m.nItems }

// NumRatings returns the total number of ratings stored.
func (m *Matrix) NumRatings() int {
	n := 0
	for _, u := range m.users {
		n += len(u)
	}
	return n
}

// Ratings returns user u's ratings sorted by item (shared slice).
func (m *Matrix) Ratings(u int) []Rating { return m.users[u] }

// Mean returns user u's mean rating (0 when the user has no ratings).
func (m *Matrix) Mean(u int) float64 { return m.means[u] }

// Rating returns user u's score for an item, if rated.
func (m *Matrix) Rating(u int, item int32) (float64, bool) {
	rs := m.users[u]
	k := sort.Search(len(rs), func(i int) bool { return rs[i].Item >= item })
	if k < len(rs) && rs[k].Item == item {
		return rs[k].Score, true
	}
	return 0, false
}

// Weight returns the Pearson correlation coefficient between two users'
// rating vectors over their co-rated items — the paper's similarity weight.
// Users with fewer than two co-rated items get weight 0.
func Weight(a, b []Rating) float64 {
	var xs, ys []float64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Item < b[j].Item:
			i++
		case a[i].Item > b[j].Item:
			j++
		default:
			xs = append(xs, a[i].Score)
			ys = append(ys, b[j].Score)
			i++
			j++
		}
	}
	return vmath.Pearson(xs, ys)
}

// FeatureSource adapts the matrix to synopsis building: each user is a
// data point whose sparse features are item ratings (paper step 1).
type FeatureSource struct{ M *Matrix }

// NumPoints returns the number of users.
func (f FeatureSource) NumPoints() int { return f.M.NumUsers() }

// NumFeatures returns the item-space size.
func (f FeatureSource) NumFeatures() int { return f.M.NumItems() }

// Features returns user i's ratings as SVD cells.
func (f FeatureSource) Features(i int) []svd.Cell {
	rs := f.M.Ratings(i)
	cells := make([]svd.Cell, len(rs))
	for k, r := range rs {
		cells[k] = svd.Cell{Col: r.Item, Val: r.Score}
	}
	return cells
}
