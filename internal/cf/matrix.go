package cf

import (
	"math"
	"slices"

	"accuracytrader/internal/csr"
	"accuracytrader/internal/svd"
)

// Rating is one (item, score) pair of a user.
type Rating struct {
	Item  int32
	Score float64
}

// Matrix is the user-item rating matrix of one service component's data
// subset. User ratings are kept sorted by item for merge-join weight
// computation, in one flat CSR backing array (internal/csr) so exact
// scans and Algorithm 1's set processing stream contiguous memory.
type Matrix struct {
	users  csr.Store[Rating]
	means  []float64
	nItems int
}

// NewMatrix returns an empty matrix over nItems items.
func NewMatrix(nItems int) *Matrix {
	if nItems <= 0 {
		panic("cf: non-positive item count")
	}
	return &Matrix{nItems: nItems}
}

// AddUser appends a user with the given ratings and returns the user id.
func (m *Matrix) AddUser(rs []Rating) int {
	id := m.users.AddRow(nil)
	m.means = append(m.means, 0)
	m.SetUser(id, rs)
	return id
}

// SetUser replaces user u's ratings (an input-data change).
func (m *Matrix) SetUser(u int, rs []Rating) {
	if u < 0 || u >= m.users.NumRows() {
		panic("cf: SetUser out of range")
	}
	cp := append([]Rating(nil), rs...)
	slices.SortFunc(cp, func(a, b Rating) int { return int(a.Item) - int(b.Item) })
	sum := 0.0
	for _, r := range cp {
		if r.Item < 0 || int(r.Item) >= m.nItems {
			panic("cf: rating item out of range")
		}
		sum += r.Score
	}
	m.users.SetRow(u, cp)
	if len(cp) > 0 {
		m.means[u] = sum / float64(len(cp))
	} else {
		m.means[u] = 0
	}
}

// NumUsers returns the number of users.
func (m *Matrix) NumUsers() int { return m.users.NumRows() }

// NumItems returns the item-space size.
func (m *Matrix) NumItems() int { return m.nItems }

// NumRatings returns the total number of ratings stored.
func (m *Matrix) NumRatings() int { return m.users.TotalLen() }

// Ratings returns user u's ratings sorted by item. The slice aliases the
// flat backing array and is valid until the next matrix mutation.
func (m *Matrix) Ratings(u int) []Rating { return m.users.Row(u) }

// Mean returns user u's mean rating (0 when the user has no ratings).
func (m *Matrix) Mean(u int) float64 { return m.means[u] }

// Rating returns user u's score for an item, if rated.
func (m *Matrix) Rating(u int, item int32) (float64, bool) {
	rs := m.users.Row(u)
	lo, hi := 0, len(rs)
	for lo < hi {
		mid := (lo + hi) / 2
		if rs[mid].Item < item {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(rs) && rs[lo].Item == item {
		return rs[lo].Score, true
	}
	return 0, false
}

// Weight returns the Pearson correlation coefficient between two users'
// rating vectors over their co-rated items — the paper's similarity weight.
// Users with fewer than two co-rated items get weight 0.
//
// The co-rated pairs are found by a merge-join over the sorted rating
// vectors, run twice (means, then moments) so nothing is materialized:
// zero allocations, and the accumulation order is exactly that of the
// reference implementation (collect pairs, then vmath.Pearson), keeping
// the result bit-identical to it.
func Weight(a, b []Rating) float64 {
	n := 0
	sx, sy := 0.0, 0.0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		ai, bj := a[i].Item, b[j].Item
		if ai < bj {
			i++
			continue
		}
		if ai > bj {
			j++
			continue
		}
		sx += a[i].Score
		sy += b[j].Score
		n++
		i++
		j++
	}
	if n < 2 {
		return 0
	}
	mx, my := sx/float64(n), sy/float64(n)
	var sxy, sxx, syy float64
	i, j = 0, 0
	for i < len(a) && j < len(b) {
		ai, bj := a[i].Item, b[j].Item
		if ai < bj {
			i++
			continue
		}
		if ai > bj {
			j++
			continue
		}
		dx, dy := a[i].Score-mx, b[j].Score-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
		i++
		j++
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	r := sxy / math.Sqrt(sxx*syy)
	// Clamp rounding noise so callers can rely on [-1,1].
	if r > 1 {
		r = 1
	} else if r < -1 {
		r = -1
	}
	return r
}

// FeatureSource adapts the matrix to synopsis building: each user is a
// data point whose sparse features are item ratings (paper step 1).
type FeatureSource struct{ M *Matrix }

// NumPoints returns the number of users.
func (f FeatureSource) NumPoints() int { return f.M.NumUsers() }

// NumFeatures returns the item-space size.
func (f FeatureSource) NumFeatures() int { return f.M.NumItems() }

// Features returns user i's ratings as SVD cells.
func (f FeatureSource) Features(i int) []svd.Cell {
	rs := f.M.Ratings(i)
	cells := make([]svd.Cell, len(rs))
	for k, r := range rs {
		cells[k] = svd.Cell{Col: r.Item, Val: r.Score}
	}
	return cells
}
