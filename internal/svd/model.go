package svd

import (
	"math"

	"accuracytrader/internal/stats"
)

// Config controls training. Zero fields take the listed defaults.
type Config struct {
	Dims         int     // latent dimensions j (default 3, the paper's setting)
	Epochs       int     // gradient-descent iterations per dimension (default 100, per paper §4.2)
	RefineEpochs int     // joint epochs over all dims after per-dim training (default Epochs/2; -1 disables)
	LearningRate float64 // SGD step size (default 0.01)
	Reg          float64 // L2 regularization (default 0.005)
	Seed         uint64  // factor initialization seed
}

func (c Config) withDefaults() Config {
	if c.Dims <= 0 {
		c.Dims = 3
	}
	if c.Epochs <= 0 {
		c.Epochs = 100
	}
	if c.RefineEpochs == 0 {
		c.RefineEpochs = c.Epochs / 2
	}
	if c.RefineEpochs < 0 {
		c.RefineEpochs = 0
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.01
	}
	if c.Reg <= 0 {
		c.Reg = 0.005
	}
	return c
}

// Model holds the learned factor matrices: U maps each row to its Dims-
// dimensional latent representation, V each column. The row factors are
// what the synopsis builder feeds into the R-tree.
type Model struct {
	U, V [][]float64
	cfg  Config
}

// Train factorizes m into row and column factors, one latent dimension at
// a time with residual caching (the Funk incremental method the paper
// builds on): dimension d is trained on the residuals left by dimensions
// 0..d-1, so each epoch is a single pass over the known cells.
func Train(m *Matrix, cfg Config) *Model {
	cfg = cfg.withDefaults()
	rng := stats.NewRNG(cfg.Seed)
	mo := &Model{
		U:   initFactors(m.Rows(), cfg.Dims, rng),
		V:   initFactors(m.Cols(), cfg.Dims, rng),
		cfg: cfg,
	}
	// residual[r][i] tracks val - prediction from already-trained dims for
	// the i-th known cell of row r.
	residual := make([][]float64, m.Rows())
	for r := 0; r < m.Rows(); r++ {
		row := m.Row(r)
		res := make([]float64, len(row))
		for i, c := range row {
			res[i] = c.Val
		}
		residual[r] = res
	}
	lr, reg := cfg.LearningRate, cfg.Reg
	for d := 0; d < cfg.Dims; d++ {
		for epoch := 0; epoch < cfg.Epochs; epoch++ {
			for r := 0; r < m.Rows(); r++ {
				u := mo.U[r]
				row := m.Row(r)
				res := residual[r]
				for i, c := range row {
					v := mo.V[c.Col]
					err := res[i] - u[d]*v[d]
					ud := u[d]
					u[d] += lr * (err*v[d] - reg*ud)
					v[d] += lr * (err*ud - reg*v[d])
				}
			}
		}
		// Fold this dimension's contribution into the residuals.
		for r := 0; r < m.Rows(); r++ {
			u := mo.U[r]
			row := m.Row(r)
			res := residual[r]
			for i, c := range row {
				res[i] -= u[d] * mo.V[c.Col][d]
			}
		}
	}
	// Joint refinement: the greedy per-dimension phase deflates each rank
	// in isolation, which on incomplete matrices leaves residual error the
	// dimensions could absorb jointly; a short all-dims SGD pass closes
	// that gap at the same per-epoch cost.
	for e := 0; e < cfg.RefineEpochs; e++ {
		for r := 0; r < m.Rows(); r++ {
			u := mo.U[r]
			for _, c := range m.Row(r) {
				v := mo.V[c.Col]
				pred := 0.0
				for d := range u {
					pred += u[d] * v[d]
				}
				err := c.Val - pred
				for d := range u {
					ud := u[d]
					u[d] += lr * (err*v[d] - reg*ud)
					v[d] += lr * (err*ud - reg*v[d])
				}
			}
		}
	}
	return mo
}

func initFactors(n, dims int, rng *stats.RNG) [][]float64 {
	f := make([][]float64, n)
	for i := range f {
		row := make([]float64, dims)
		for d := range row {
			row[d] = 0.1 + 0.02*rng.Norm(0, 1)
		}
		f[i] = row
	}
	return f
}

// Dims returns the latent dimensionality of the model.
func (mo *Model) Dims() int { return mo.cfg.Dims }

// RowFactors returns row r's latent vector (shared slice).
func (mo *Model) RowFactors(r int) []float64 { return mo.U[r] }

// Predict returns the reconstructed value of cell (r, c).
func (mo *Model) Predict(r, c int) float64 {
	s := 0.0
	for d := 0; d < mo.cfg.Dims; d++ {
		s += mo.U[r][d] * mo.V[c][d]
	}
	return s
}

// RMSE returns the root-mean-square reconstruction error over the known
// cells of m (NaN when m is empty).
func (mo *Model) RMSE(m *Matrix) float64 {
	if m.NNZ() == 0 {
		return math.NaN()
	}
	se := 0.0
	for r := 0; r < m.Rows() && r < len(mo.U); r++ {
		for _, c := range m.Row(r) {
			d := c.Val - mo.Predict(r, int(c.Col))
			se += d * d
		}
	}
	return math.Sqrt(se / float64(m.NNZ()))
}

// FoldIn learns a latent vector for a new row against the fixed column
// factors. This is the incremental step that lets synopsis updating avoid
// full retraining: its cost depends only on the new row's cells, not the
// dataset size. Cells in columns the model has never seen (e.g. new
// vocabulary terms appearing after training) carry no latent information
// and are ignored, as in classic SVD fold-in. epochs <= 0 uses the
// training epoch count.
func (mo *Model) FoldIn(cells []Cell, epochs int) []float64 {
	if epochs <= 0 {
		epochs = mo.cfg.Epochs
	}
	known := cells[:0:0]
	for _, c := range cells {
		if int(c.Col) < len(mo.V) {
			known = append(known, c)
		}
	}
	cells = known
	u := make([]float64, mo.cfg.Dims)
	for d := range u {
		u[d] = 0.1
	}
	lr, reg := mo.cfg.LearningRate, mo.cfg.Reg
	for d := 0; d < mo.cfg.Dims; d++ {
		for e := 0; e < epochs; e++ {
			for _, c := range cells {
				v := mo.V[c.Col]
				pred := 0.0
				for k := 0; k <= d; k++ {
					pred += u[k] * v[k]
				}
				err := c.Val - pred
				u[d] += lr * (err*v[d] - reg*u[d])
			}
		}
	}
	// Joint refinement over all dims, mirroring Train.
	for e := 0; e < epochs; e++ {
		for _, c := range cells {
			v := mo.V[c.Col]
			pred := 0.0
			for d := range u {
				pred += u[d] * v[d]
			}
			err := c.Val - pred
			for d := range u {
				u[d] += lr * (err*v[d] - reg*u[d])
			}
		}
	}
	return u
}

// AppendRow extends the model with a folded-in latent vector for a new
// row and returns its index in U.
func (mo *Model) AppendRow(cells []Cell, epochs int) int {
	u := mo.FoldIn(cells, epochs)
	mo.U = append(mo.U, u)
	return len(mo.U) - 1
}

// UpdateRow re-learns the latent vector for an existing row whose data
// changed, in place.
func (mo *Model) UpdateRow(r int, cells []Cell, epochs int) {
	mo.U[r] = mo.FoldIn(cells, epochs)
}

// Snapshot is the serializable state of a trained Model.
type Snapshot struct {
	U, V [][]float64
	Cfg  Config
}

// Snapshot captures the model state for persistence.
func (mo *Model) Snapshot() Snapshot {
	return Snapshot{U: mo.U, V: mo.V, Cfg: mo.cfg}
}

// FromSnapshot reconstructs a Model from a Snapshot.
func FromSnapshot(s Snapshot) *Model {
	return &Model{U: s.U, V: s.V, cfg: s.Cfg.withDefaults()}
}
