package svd

import (
	"math"
	"testing"
	"testing/quick"

	"accuracytrader/internal/stats"
	"accuracytrader/internal/vmath"
)

// syntheticMatrix builds a rows x cols matrix of rank `rank` plus noise,
// with a density fraction of cells observed.
func syntheticMatrix(rng *stats.RNG, rows, cols, rank int, noise, density float64) (*Matrix, [][]float64) {
	uTrue := make([][]float64, rows)
	vTrue := make([][]float64, cols)
	for i := range uTrue {
		u := make([]float64, rank)
		for d := range u {
			u[d] = rng.Norm(0, 1)
		}
		uTrue[i] = u
	}
	for i := range vTrue {
		v := make([]float64, rank)
		for d := range v {
			v[d] = rng.Norm(0, 1)
		}
		vTrue[i] = v
	}
	m := NewMatrix(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if rng.Float64() < density {
				m.Set(r, c, vmath.Dot(uTrue[r], vTrue[c])+rng.Norm(0, noise))
			}
		}
	}
	return m, uTrue
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 || m.NNZ() != 0 {
		t.Fatal("fresh matrix wrong shape")
	}
	m.Set(0, 1, 5)
	m.Set(0, 1, 7) // overwrite must not grow nnz
	if m.NNZ() != 1 {
		t.Fatalf("NNZ = %d", m.NNZ())
	}
	if v, ok := m.Get(0, 1); !ok || v != 7 {
		t.Fatalf("Get = %v,%v", v, ok)
	}
	if _, ok := m.Get(1, 1); ok {
		t.Fatal("Get of unset cell should miss")
	}
	r := m.AppendRow([]Cell{{Col: 3, Val: 1}, {Col: 0, Val: 2}})
	if r != 3 || m.Rows() != 4 || m.NNZ() != 3 {
		t.Fatalf("AppendRow: r=%d rows=%d nnz=%d", r, m.Rows(), m.NNZ())
	}
	// AppendRow must sort cells by column.
	row := m.Row(3)
	if row[0].Col != 0 || row[1].Col != 3 {
		t.Fatalf("row not sorted: %v", row)
	}
	m.ReplaceRow(3, []Cell{{Col: 2, Val: 9}})
	if m.NNZ() != 2 {
		t.Fatalf("NNZ after replace = %d", m.NNZ())
	}
}

func TestMatrixPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewMatrix(-1, 2) },
		func() { NewMatrix(2, 0) },
		func() { NewMatrix(2, 2).Set(2, 0, 1) },
		func() { NewMatrix(2, 2).Set(0, 5, 1) },
		func() { NewMatrix(2, 2).ReplaceRow(5, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestTrainReducesRMSE(t *testing.T) {
	rng := stats.NewRNG(1)
	m, _ := syntheticMatrix(rng, 120, 60, 3, 0.05, 0.3)
	base := Train(m, Config{Dims: 3, Epochs: 1, Seed: 2})
	full := Train(m, Config{Dims: 3, Epochs: 100, Seed: 2})
	if full.RMSE(m) >= base.RMSE(m) {
		t.Fatalf("training did not improve RMSE: %v vs %v", full.RMSE(m), base.RMSE(m))
	}
	if full.RMSE(m) > 0.15 {
		t.Fatalf("rank-3 matrix should reconstruct well, RMSE=%v", full.RMSE(m))
	}
}

func TestTrainDeterministic(t *testing.T) {
	rng := stats.NewRNG(3)
	m, _ := syntheticMatrix(rng, 40, 20, 2, 0.1, 0.4)
	a := Train(m, Config{Dims: 2, Epochs: 10, Seed: 7})
	b := Train(m, Config{Dims: 2, Epochs: 10, Seed: 7})
	for r := range a.U {
		for d := range a.U[r] {
			if a.U[r][d] != b.U[r][d] {
				t.Fatal("training is not deterministic for equal seeds")
			}
		}
	}
}

func TestDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Dims != 3 || cfg.Epochs != 100 || cfg.RefineEpochs != 50 || cfg.LearningRate != 0.01 || cfg.Reg != 0.005 {
		t.Fatalf("defaults = %+v", cfg)
	}
}

func TestSimilarRowsStayClose(t *testing.T) {
	// The property the synopsis relies on (paper Fig. 2): rows with similar
	// observed attributes map to nearby latent points.
	rng := stats.NewRNG(4)
	rows, cols := 90, 40
	m := NewMatrix(rows, cols)
	// Three blocks of rows, each sharing a distinct column profile.
	profiles := make([][]float64, 3)
	for p := range profiles {
		prof := make([]float64, cols)
		for c := range prof {
			prof[c] = rng.Norm(0, 1)
		}
		profiles[p] = prof
	}
	for r := 0; r < rows; r++ {
		prof := profiles[r/(rows/3)]
		for c := 0; c < cols; c++ {
			if rng.Float64() < 0.5 {
				m.Set(r, c, prof[c]+rng.Norm(0, 0.05))
			}
		}
	}
	mo := Train(m, Config{Dims: 3, Epochs: 40, Seed: 5})
	// Mean intra-block distance must be well below inter-block distance.
	var intra, inter stats.Summary
	for a := 0; a < rows; a++ {
		for b := a + 1; b < rows; b++ {
			d := vmath.Dist(mo.RowFactors(a), mo.RowFactors(b))
			if a/(rows/3) == b/(rows/3) {
				intra.Add(d)
			} else {
				inter.Add(d)
			}
		}
	}
	if intra.Mean()*2 > inter.Mean() {
		t.Fatalf("latent space does not separate blocks: intra=%v inter=%v", intra.Mean(), inter.Mean())
	}
}

func TestFoldInApproximatesTraining(t *testing.T) {
	rng := stats.NewRNG(6)
	m, _ := syntheticMatrix(rng, 100, 50, 3, 0.05, 0.4)
	mo := Train(m, Config{Dims: 3, Epochs: 50, Seed: 6})
	// Fold row 0's cells back in: the folded vector must predict row 0's
	// cells about as well as the trained vector does.
	row := m.Row(0)
	folded := mo.FoldIn(row, 50)
	var seTrained, seFolded float64
	for _, c := range row {
		pt := c.Val - mo.Predict(0, int(c.Col))
		pf := c.Val - vmath.Dot(folded, mo.V[c.Col])
		seTrained += pt * pt
		seFolded += pf * pf
	}
	rt := math.Sqrt(seTrained / float64(len(row)))
	rf := math.Sqrt(seFolded / float64(len(row)))
	if rf > rt*2+0.1 {
		t.Fatalf("fold-in much worse than training: %v vs %v", rf, rt)
	}
}

func TestAppendAndUpdateRow(t *testing.T) {
	rng := stats.NewRNG(7)
	m, _ := syntheticMatrix(rng, 50, 30, 2, 0.05, 0.5)
	mo := Train(m, Config{Dims: 2, Epochs: 30, Seed: 7})
	before := len(mo.U)
	idx := mo.AppendRow(m.Row(3), 30)
	if idx != before || len(mo.U) != before+1 {
		t.Fatalf("AppendRow index = %d, len = %d", idx, len(mo.U))
	}
	// A row folded from row 3's data should land near row 3's factors.
	if d := vmath.Dist(mo.U[idx], mo.U[3]); d > 0.8 {
		t.Fatalf("appended row too far from its twin: %v", d)
	}
	old := vmath.Clone(mo.U[5])
	mo.UpdateRow(5, m.Row(3), 30)
	if vmath.Dist(mo.U[5], old) == 0 {
		t.Fatal("UpdateRow did not change factors")
	}
}

func TestPredictUsesAllDims(t *testing.T) {
	mo := &Model{
		U:   [][]float64{{1, 2}},
		V:   [][]float64{{3, 4}},
		cfg: Config{Dims: 2}.withDefaults(),
	}
	mo.cfg.Dims = 2
	if got := mo.Predict(0, 0); got != 11 {
		t.Fatalf("Predict = %v", got)
	}
}

func TestRMSEEmptyMatrix(t *testing.T) {
	m := NewMatrix(2, 2)
	mo := Train(m, Config{Dims: 2, Epochs: 1})
	if !math.IsNaN(mo.RMSE(m)) {
		t.Fatal("RMSE of empty matrix should be NaN")
	}
}

func TestFoldInBoundedProperty(t *testing.T) {
	// Fold-in on bounded data must produce finite factors (no divergence),
	// for arbitrary small cell sets.
	rng := stats.NewRNG(8)
	m, _ := syntheticMatrix(rng, 60, 30, 2, 0.1, 0.5)
	mo := Train(m, Config{Dims: 2, Epochs: 20, Seed: 8})
	f := func(seed uint32, n uint8) bool {
		r := rng.Split(uint64(seed))
		k := int(n%10) + 1
		cells := make([]Cell, k)
		for i := range cells {
			cells[i] = Cell{Col: int32(r.Intn(30)), Val: r.Norm(0, 2)}
		}
		u := mo.FoldIn(cells, 20)
		for _, v := range u {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 100 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFoldInIgnoresUnseenColumns(t *testing.T) {
	// Regression: a document arriving after training may contain brand-new
	// vocabulary; those feature columns have no trained factors and must
	// be skipped, not crash.
	rng := stats.NewRNG(20)
	m, _ := syntheticMatrix(rng, 40, 20, 2, 0.05, 0.5)
	mo := Train(m, Config{Dims: 2, Epochs: 20, Seed: 20})
	cells := []Cell{{Col: 5, Val: 1.5}, {Col: 999, Val: 3}, {Col: 10, Val: -0.5}}
	u := mo.FoldIn(cells, 20)
	for _, v := range u {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("fold-in with unseen columns produced %v", u)
		}
	}
	// The unseen column must not change the outcome at all.
	known := []Cell{{Col: 5, Val: 1.5}, {Col: 10, Val: -0.5}}
	u2 := mo.FoldIn(known, 20)
	for d := range u {
		if u[d] != u2[d] {
			t.Fatalf("unseen column affected factors: %v vs %v", u, u2)
		}
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	rng := stats.NewRNG(21)
	m, _ := syntheticMatrix(rng, 30, 15, 2, 0.1, 0.5)
	mo := Train(m, Config{Dims: 2, Epochs: 15, Seed: 21})
	back := FromSnapshot(mo.Snapshot())
	if back.Dims() != mo.Dims() {
		t.Fatal("dims changed")
	}
	for r := 0; r < m.Rows(); r++ {
		for _, c := range m.Row(r) {
			if back.Predict(r, int(c.Col)) != mo.Predict(r, int(c.Col)) {
				t.Fatal("predictions changed across snapshot")
			}
		}
	}
	// Fold-in must keep working on the restored model.
	u := back.FoldIn(m.Row(0), 10)
	if len(u) != 2 {
		t.Fatalf("fold-in after restore: %v", u)
	}
}
