package svd

import "sort"

// Cell is one known value in a sparse row.
type Cell struct {
	Col int32
	Val float64
}

// Matrix is a sparse row-major matrix of known cells. Rows correspond to
// data points (users, web pages); columns to feature attributes (items,
// vocabulary terms).
type Matrix struct {
	rows, cols int
	cells      [][]Cell
	nnz        int
}

// NewMatrix returns an empty rows x cols sparse matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols <= 0 {
		panic("svd: invalid matrix shape")
	}
	return &Matrix{rows: rows, cols: cols, cells: make([][]Cell, rows)}
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// NNZ returns the number of known cells.
func (m *Matrix) NNZ() int { return m.nnz }

// Set records the value of cell (r, c), overwriting any previous value.
func (m *Matrix) Set(r, c int, v float64) {
	if r < 0 || r >= m.rows || c < 0 || c >= m.cols {
		panic("svd: Set out of range")
	}
	row := m.cells[r]
	for i := range row {
		if row[i].Col == int32(c) {
			row[i].Val = v
			return
		}
	}
	m.cells[r] = append(row, Cell{Col: int32(c), Val: v})
	m.nnz++
}

// AppendRow grows the matrix by one row with the given cells and returns
// the new row index. Used when new data points arrive.
func (m *Matrix) AppendRow(cells []Cell) int {
	r := m.rows
	m.rows++
	cp := append([]Cell(nil), cells...)
	sort.Slice(cp, func(i, j int) bool { return cp[i].Col < cp[j].Col })
	m.cells = append(m.cells, cp)
	m.nnz += len(cp)
	return r
}

// ReplaceRow overwrites row r's cells entirely (a "changed data point").
func (m *Matrix) ReplaceRow(r int, cells []Cell) {
	if r < 0 || r >= m.rows {
		panic("svd: ReplaceRow out of range")
	}
	m.nnz -= len(m.cells[r])
	cp := append([]Cell(nil), cells...)
	sort.Slice(cp, func(i, j int) bool { return cp[i].Col < cp[j].Col })
	m.cells[r] = cp
	m.nnz += len(cp)
}

// Row returns the cells of row r (shared slice; callers must not modify).
func (m *Matrix) Row(r int) []Cell { return m.cells[r] }

// Get returns the value at (r, c) and whether it is known.
func (m *Matrix) Get(r, c int) (float64, bool) {
	for _, cell := range m.cells[r] {
		if cell.Col == int32(c) {
			return cell.Val, true
		}
	}
	return 0, false
}
