// Package svd implements the incremental singular-value-decomposition
// dimensionality reduction used by step 1 of synopsis creation (paper
// §2.2/§3.1, references [5][17]). It follows the Funk/Gorrell formulation:
// latent dimensions are trained one at a time by stochastic gradient
// descent over the known cells of a sparse matrix, so training time is
// O(epochs x nnz x dims) and independent of the dense matrix size, and new
// rows can be folded in against the fixed item factors without retraining.
package svd
