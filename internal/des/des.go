package des

import "container/heap"

// Event is a scheduled callback.
type event struct {
	at  float64
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Sim is a single-threaded event loop over virtual milliseconds. Events
// scheduled for the same instant fire in scheduling order, which makes
// every run bit-for-bit reproducible.
type Sim struct {
	now  float64
	heap eventHeap
	seq  uint64
}

// New returns a simulator at time 0.
func New() *Sim { return &Sim{} }

// Now returns the current virtual time in milliseconds.
func (s *Sim) Now() float64 { return s.now }

// At schedules fn at absolute virtual time t. Scheduling in the past
// panics: it is always a simulation bug.
func (s *Sim) At(t float64, fn func()) {
	if t < s.now {
		panic("des: scheduling into the past")
	}
	s.seq++
	heap.Push(&s.heap, event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn d milliseconds from now.
func (s *Sim) After(d float64, fn func()) {
	if d < 0 {
		panic("des: negative delay")
	}
	s.At(s.now+d, fn)
}

// Pending returns the number of scheduled events.
func (s *Sim) Pending() int { return len(s.heap) }

// Run processes events until none remain.
func (s *Sim) Run() {
	for len(s.heap) > 0 {
		s.step()
	}
}

// RunUntil processes events with time <= t, then advances the clock to t.
func (s *Sim) RunUntil(t float64) {
	for len(s.heap) > 0 && s.heap[0].at <= t {
		s.step()
	}
	if t > s.now {
		s.now = t
	}
}

func (s *Sim) step() {
	e := heap.Pop(&s.heap).(event)
	s.now = e.at
	e.fn()
}
