package des

import (
	"testing"
)

func TestEventOrdering(t *testing.T) {
	s := New()
	var order []int
	s.At(10, func() { order = append(order, 1) })
	s.At(5, func() { order = append(order, 0) })
	s.At(10, func() { order = append(order, 2) }) // same time: scheduling order
	s.Run()
	want := []int{0, 1, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
	if s.Now() != 10 {
		t.Fatalf("Now = %v", s.Now())
	}
}

func TestAfterAndNesting(t *testing.T) {
	s := New()
	var times []float64
	s.After(3, func() {
		times = append(times, s.Now())
		s.After(4, func() { times = append(times, s.Now()) })
	})
	s.Run()
	if len(times) != 2 || times[0] != 3 || times[1] != 7 {
		t.Fatalf("times = %v", times)
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	fired := 0
	s.At(5, func() { fired++ })
	s.At(15, func() { fired++ })
	s.RunUntil(10)
	if fired != 1 {
		t.Fatalf("fired = %d", fired)
	}
	if s.Now() != 10 {
		t.Fatalf("Now = %v", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d", s.Pending())
	}
	s.Run()
	if fired != 2 || s.Now() != 15 {
		t.Fatalf("final state: fired=%d now=%v", fired, s.Now())
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	s := New()
	s.At(10, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.At(5, func() {})
}

func TestNegativeDelayPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.After(-1, func() {})
}

func TestManyEventsDeterministic(t *testing.T) {
	run := func() []float64 {
		s := New()
		var log []float64
		for i := 0; i < 1000; i++ {
			tm := float64((i * 7919) % 500)
			s.At(tm, func() { log = append(log, s.Now()) })
		}
		s.Run()
		return log
	}
	a, b := run(), run()
	if len(a) != 1000 || len(b) != 1000 {
		t.Fatal("lost events")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d", i)
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i] < a[i-1] {
			t.Fatal("time went backwards")
		}
	}
}
