// Package des is a minimal deterministic discrete-event simulation kernel:
// an event heap ordered by (virtual time, insertion sequence) and a
// virtual clock. The cluster simulator runs hours of service load on it in
// seconds of real time, which is how the paper-scale experiments
// (Tables 1-2, Figures 5-8) regenerate on a laptop.
package des
