package audit

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"accuracytrader/internal/obs"
)

// Mode selects how a sample's realized accuracy is computed.
type Mode uint8

const (
	// ModeRelErr scores element-wise mean relative error against the
	// exact values (agg estimates, cf predictions): realized accuracy
	// is 1 - meanRelErr, mirroring agg.Accuracy's semantics.
	ModeRelErr Mode = iota
	// ModeOverlap scores set recall (search result doc IDs): realized
	// accuracy is |approx ∩ exact| / |exact|.
	ModeOverlap
)

// ClassBounded is the wire SLO code for Bounded requests — the only
// class with a floor to violate.
const ClassBounded = 1

// Sample is one answered request captured for ground-truth replay.
// Estimates (and, when the workload ships them, Bounds — per-estimate
// CLT half-widths) are the approximate answer as the client saw it;
// Payload carries whatever the runtime's Replay hook needs to recompute
// the request exactly (typically the decoded request).
type Sample struct {
	TraceID         uint64
	Workload        string
	Class           uint8
	Level           int16
	MinAccuracy     float64
	ClaimedAccuracy float64
	Epoch           uint64
	Tenant          string
	Mode            Mode
	Estimates       []float64
	Bounds          []float64
	Payload         any
}

// Verdict is the outcome of auditing one sample.
type Verdict struct {
	// RealizedAccuracy is ground truth: 1 - meanRelErr (ModeRelErr) or
	// recall (ModeOverlap) against the exact replay.
	RealizedAccuracy float64
	// AccuracyGap is claimed - realized: positive means the system
	// over-promised.
	AccuracyGap float64
	// BoundsTotal / BoundsCovered count the claimed CLT bounds checked
	// and how many contained the exact value.
	BoundsTotal   int
	BoundsCovered int
	// FloorViolated is true when a Bounded request's realized accuracy
	// fell below its floor.
	FloorViolated bool
}

// Config parameterizes an Auditor. Replay is the only required field.
type Config struct {
	// SampleFraction of answered requests to audit, in [0,1].
	// Defaults to 0.05; >= 1 audits everything offered.
	SampleFraction float64
	// QueueLen bounds the pending-sample queue (default 256). A full
	// queue drops the sample — auditing is best-effort by design.
	QueueLen int
	// Interval paces replays (default 5ms between audits).
	Interval time.Duration
	// ReplayTimeout bounds one exact replay (default 2s).
	ReplayTimeout time.Duration
	// Gate, when set, must return true for a replay to run — wire the
	// controller's load ceiling here so audits never compete with
	// foreground traffic. A closed gate requeues the sample.
	Gate func() bool
	// Epoch, when set, returns the live data epoch. Samples whose
	// stamped epoch no longer matches are skipped (stale), both before
	// and after the replay — never audit against newer data.
	Epoch func() uint64
	// Replay recomputes the sample's request exactly and returns the
	// exact values in the same shape as Sample.Estimates.
	Replay func(ctx context.Context, s *Sample) ([]float64, error)
	// OnVerdict, when set, observes every verdict (pin traces, bump
	// SLO floor violations, upgrade cache entries).
	OnVerdict func(s *Sample, v Verdict)
	// Metrics, when set, receives the auditor's counters.
	Metrics *obs.Registry
}

// Stats is the auditor's accounting. Every sampled request lands in
// exactly one of the other buckets once the auditor is closed:
// sampled = audited + skippedStale + replayErrs + dropped.
type Stats struct {
	Sampled      int64 `json:"sampled"`
	Audited      int64 `json:"audited"`
	SkippedStale int64 `json:"skipped_stale_epoch"`
	ReplayErrs   int64 `json:"replay_errors"`
	Dropped      int64 `json:"dropped"`
	Violations   int64 `json:"floor_violations"`
}

// Auditor owns the sampling decision, the pending queue, and the
// background replay worker. A nil *Auditor is a valid no-op receiver:
// ShouldSample reports false and Submit reports false, so the disabled
// path costs nothing and call sites need no branches.
type Auditor struct {
	cfg       Config
	threshold uint64 // sample iff hash(id) < threshold
	fallback  atomic.Uint64

	queue chan *Sample
	quit  chan struct{}
	wg    sync.WaitGroup

	mu     sync.RWMutex // guards closed (write: Close) and tables
	closed bool
	tables map[tableKey]*table

	sampled      obs.Counter
	audited      obs.Counter
	skippedStale obs.Counter
	replayErrs   obs.Counter
	dropped      obs.Counter
	violations   obs.Counter
}

// ErrNoReplay rejects a Config without a Replay hook.
var ErrNoReplay = errors.New("audit: Config.Replay is required")

// New starts an auditor and its background worker.
func New(cfg Config) (*Auditor, error) {
	if cfg.Replay == nil {
		return nil, ErrNoReplay
	}
	if cfg.SampleFraction == 0 {
		cfg.SampleFraction = 0.05
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 256
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 5 * time.Millisecond
	}
	if cfg.ReplayTimeout <= 0 {
		cfg.ReplayTimeout = 2 * time.Second
	}
	a := &Auditor{
		cfg:       cfg,
		threshold: sampleThreshold(cfg.SampleFraction),
		queue:     make(chan *Sample, cfg.QueueLen),
		quit:      make(chan struct{}),
		tables:    make(map[tableKey]*table),
	}
	if reg := cfg.Metrics; reg != nil {
		reg.GaugeFunc("audit_sampled_total", counterGauge(&a.sampled))
		reg.GaugeFunc("audit_audited_total", counterGauge(&a.audited))
		reg.GaugeFunc("audit_skipped_stale_epoch_total", counterGauge(&a.skippedStale))
		reg.GaugeFunc("audit_replay_errors_total", counterGauge(&a.replayErrs))
		reg.GaugeFunc("audit_dropped_total", counterGauge(&a.dropped))
		reg.GaugeFunc("audit_floor_violations_total", counterGauge(&a.violations))
	}
	a.wg.Add(1)
	go a.worker()
	return a, nil
}

func counterGauge(c *obs.Counter) func() float64 {
	return func() float64 { return float64(c.Value()) }
}

// sampleThreshold maps a fraction to the hash-space cut point.
func sampleThreshold(frac float64) uint64 {
	if frac <= 0 {
		return 0
	}
	if frac >= 1 {
		return ^uint64(0)
	}
	return uint64(frac * math.MaxUint64)
}

// hash64 is the splitmix64 finalizer — a cheap, well-mixed bijection,
// so any fraction of the ID space samples uniformly.
func hash64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ShouldSample deterministically decides whether the request with this
// trace ID is audited. Every process holding the same ID agrees, so a
// request is never double-audited across replicas. id 0 (tracing off)
// substitutes a local counter so sampling still works untraced.
// Allocation-free; false on a nil auditor.
func (a *Auditor) ShouldSample(id uint64) bool {
	if a == nil || a.threshold == 0 {
		return false
	}
	if a.threshold == ^uint64(0) {
		return true
	}
	if id == 0 {
		id = a.fallback.Add(1) * 0x9e3779b97f4a7c15
	}
	return hash64(id) < a.threshold
}

// Submit enqueues a sampled request for replay. Reports false when the
// queue is full or the auditor is closed (the sample is counted
// dropped). Safe to call concurrently with Close.
func (a *Auditor) Submit(s *Sample) bool {
	if a == nil || s == nil {
		return false
	}
	a.mu.RLock()
	defer a.mu.RUnlock()
	a.sampled.Inc()
	if a.closed {
		a.dropped.Inc()
		return false
	}
	select {
	case a.queue <- s:
		return true
	default:
		a.dropped.Inc()
		return false
	}
}

// Close stops the worker, draining the queue into the dropped count so
// the accounting stays exact. Idempotent; safe during live Submits.
func (a *Auditor) Close() {
	if a == nil {
		return
	}
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return
	}
	a.closed = true
	a.mu.Unlock()
	close(a.quit)
	a.wg.Wait()
	for {
		select {
		case <-a.queue:
			a.dropped.Inc()
		default:
			return
		}
	}
}

// worker mirrors the rescache refresh loop: pull one sample, audit it
// (requeueing while the load gate is closed), then pace.
func (a *Auditor) worker() {
	defer a.wg.Done()
	for {
		select {
		case <-a.quit:
			return
		case s := <-a.queue:
			a.auditOne(s)
		}
		select {
		case <-a.quit:
			return
		case <-time.After(a.cfg.Interval):
		}
	}
}

func (a *Auditor) auditOne(s *Sample) {
	if a.cfg.Gate != nil && !a.cfg.Gate() {
		// Foreground is busy: requeue without blocking and let the
		// pacing delay back off. A full queue drops the sample.
		select {
		case a.queue <- s:
		default:
			a.dropped.Inc()
		}
		return
	}
	if a.cfg.Epoch != nil && a.cfg.Epoch() != s.Epoch {
		a.skippedStale.Inc()
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), a.cfg.ReplayTimeout)
	exact, err := a.cfg.Replay(ctx, s)
	cancel()
	if err != nil {
		a.replayErrs.Inc()
		return
	}
	if a.cfg.Epoch != nil && a.cfg.Epoch() != s.Epoch {
		// The data epoch swapped mid-replay: the "exact" answer was
		// computed against newer data than the original reply saw.
		a.skippedStale.Inc()
		return
	}
	v := Judge(s, exact)
	a.audited.Inc()
	if v.FloorViolated {
		a.violations.Inc()
	}
	a.record(s, v)
	if a.cfg.OnVerdict != nil {
		a.cfg.OnVerdict(s, v)
	}
}

// Judge scores a sample against its exact replay values. Exported so
// tests and experiments can score without a live worker.
func Judge(s *Sample, exact []float64) Verdict {
	var realized float64
	switch s.Mode {
	case ModeOverlap:
		realized = overlapRecall(s.Estimates, exact)
	default:
		realized = 1 - meanRelErr(s.Estimates, exact)
	}
	v := Verdict{
		RealizedAccuracy: realized,
		AccuracyGap:      s.ClaimedAccuracy - realized,
	}
	if len(s.Bounds) > 0 {
		n := len(s.Bounds)
		if len(s.Estimates) < n {
			n = len(s.Estimates)
		}
		if len(exact) < n {
			n = len(exact)
		}
		for i := 0; i < n; i++ {
			v.BoundsTotal++
			eps := 1e-9 * math.Max(1, math.Abs(exact[i]))
			if math.Abs(s.Estimates[i]-exact[i]) <= s.Bounds[i]+eps {
				v.BoundsCovered++
			}
		}
	}
	v.FloorViolated = s.Class == ClassBounded && s.MinAccuracy > 0 &&
		realized < s.MinAccuracy
	return v
}

// meanRelErr mirrors agg.Accuracy's error semantics: per-element
// relative error capped at 1, 0 when both are zero, 1 when only the
// exact value is zero; elements present on one side only count as
// error 1.
func meanRelErr(approx, exact []float64) float64 {
	n := len(approx)
	if len(exact) > n {
		n = len(exact)
	}
	if n == 0 {
		return 0
	}
	var sum float64
	for i := 0; i < n; i++ {
		if i >= len(approx) || i >= len(exact) {
			sum += 1
			continue
		}
		a, e := approx[i], exact[i]
		switch {
		case e == 0 && a == 0:
			// exact: no error
		case e == 0:
			sum += 1
		default:
			re := math.Abs(a-e) / math.Abs(e)
			if re > 1 {
				re = 1
			}
			sum += re
		}
	}
	return sum / float64(n)
}

// overlapRecall treats both slices as ID sets and returns
// |approx ∩ exact| / |exact| (1 when exact is empty).
func overlapRecall(approx, exact []float64) float64 {
	if len(exact) == 0 {
		return 1
	}
	set := make(map[float64]struct{}, len(approx))
	for _, id := range approx {
		set[id] = struct{}{}
	}
	hit := 0
	for _, id := range exact {
		if _, ok := set[id]; ok {
			hit++
		}
	}
	return float64(hit) / float64(len(exact))
}

// Stats returns the auditor's accounting counters (zero for nil).
func (a *Auditor) Stats() Stats {
	if a == nil {
		return Stats{}
	}
	return Stats{
		Sampled:      a.sampled.Value(),
		Audited:      a.audited.Value(),
		SkippedStale: a.skippedStale.Value(),
		ReplayErrs:   a.replayErrs.Value(),
		Dropped:      a.dropped.Value(),
		Violations:   a.violations.Value(),
	}
}

// Drain blocks until the queue is empty and the last pulled sample has
// been processed, or the timeout elapses. Test helper: real deployments
// just let the worker run.
func (a *Auditor) Drain(timeout time.Duration) bool {
	if a == nil {
		return true
	}
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if len(a.queue) == 0 {
			st := a.Stats()
			if st.Sampled == st.Audited+st.SkippedStale+st.ReplayErrs+st.Dropped {
				return true
			}
		}
		time.Sleep(time.Millisecond)
	}
	return false
}
