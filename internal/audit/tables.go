package audit

import (
	"sort"
)

// tableKey identifies one calibration table: a workload at one ladder
// level.
type tableKey struct {
	workload string
	level    int16
}

// accuracyBuckets are the realized-accuracy histogram edges. The last
// implicit bucket catches exactly-1.0 (and any numerically >1) scores.
var accuracyBuckets = []float64{
	0.50, 0.80, 0.90, 0.95, 0.98, 0.99, 0.995, 0.999, 1.0,
}

// table accumulates verdicts for one (workload, level). The worker is
// the only writer; the auditor's mutex guards reader snapshots.
type table struct {
	samples       int64
	violations    int64
	boundsTotal   int64
	boundsCovered int64
	sumRealized   float64
	sumClaimed    float64
	hist          []int64 // len(accuracyBuckets)+1, realized accuracy
}

// TableView is one calibration table as served by /audit.
type TableView struct {
	Workload string `json:"workload"`
	Level    int16  `json:"level"`
	Samples  int64  `json:"samples"`
	// FloorViolations counts Bounded samples whose realized accuracy
	// fell below their floor.
	FloorViolations int64 `json:"floor_violations"`
	// BoundCoverage is covered/total over the claimed CLT bounds; it
	// should sit at or above the nominal confidence (-1 when the
	// workload ships no bounds).
	BoundCoverage float64 `json:"bound_coverage"`
	BoundsTotal   int64   `json:"bounds_total"`
	BoundsCovered int64   `json:"bounds_covered"`
	// MeanRealized / MeanClaimed expose calibration drift directly:
	// claimed far above realized means the accuracy table is stale.
	MeanRealized float64 `json:"mean_realized_accuracy"`
	MeanClaimed  float64 `json:"mean_claimed_accuracy"`
	// AccuracyHistogram counts realized accuracy per bucket; bucket i
	// is (edge[i-1], edge[i]], with a final bucket above the last edge.
	AccuracyEdges     []float64 `json:"accuracy_edges"`
	AccuracyHistogram []int64   `json:"accuracy_histogram"`
}

// Report is the /audit document.
type Report struct {
	Stats  Stats       `json:"stats"`
	Tables []TableView `json:"tables"`
}

// record folds one verdict into its calibration table. Called from the
// worker only.
func (a *Auditor) record(s *Sample, v Verdict) {
	a.mu.Lock()
	defer a.mu.Unlock()
	key := tableKey{s.Workload, s.Level}
	t := a.tables[key]
	if t == nil {
		t = &table{hist: make([]int64, len(accuracyBuckets)+1)}
		a.tables[key] = t
	}
	t.samples++
	if v.FloorViolated {
		t.violations++
	}
	t.boundsTotal += int64(v.BoundsTotal)
	t.boundsCovered += int64(v.BoundsCovered)
	t.sumRealized += v.RealizedAccuracy
	t.sumClaimed += s.ClaimedAccuracy
	// SearchFloat64s returns the smallest i with edge[i] >= v, which is
	// exactly the (edge[i-1], edge[i]] bucket; above the last edge it
	// returns len(edges), the overflow bucket.
	b := sort.SearchFloat64s(accuracyBuckets, v.RealizedAccuracy)
	t.hist[min(b, len(t.hist)-1)]++
}

// Tables snapshots every calibration table, sorted by workload then
// level (coarsest first). Nil-safe.
func (a *Auditor) Tables() []TableView {
	if a == nil {
		return nil
	}
	a.mu.RLock()
	out := make([]TableView, 0, len(a.tables))
	for key, t := range a.tables {
		tv := TableView{
			Workload:          key.workload,
			Level:             key.level,
			Samples:           t.samples,
			FloorViolations:   t.violations,
			BoundsTotal:       t.boundsTotal,
			BoundsCovered:     t.boundsCovered,
			BoundCoverage:     -1,
			AccuracyEdges:     accuracyBuckets,
			AccuracyHistogram: append([]int64(nil), t.hist...),
		}
		if t.boundsTotal > 0 {
			tv.BoundCoverage = float64(t.boundsCovered) / float64(t.boundsTotal)
		}
		if t.samples > 0 {
			tv.MeanRealized = t.sumRealized / float64(t.samples)
			tv.MeanClaimed = t.sumClaimed / float64(t.samples)
		}
		out = append(out, tv)
	}
	a.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Workload != out[j].Workload {
			return out[i].Workload < out[j].Workload
		}
		return out[i].Level < out[j].Level
	})
	return out
}

// Report builds the /audit document. Nil-safe.
func (a *Auditor) Report() Report {
	if a == nil {
		return Report{}
	}
	return Report{Stats: a.Stats(), Tables: a.Tables()}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
