// Package audit continuously verifies the system's accuracy claims
// against ground truth. It samples a configurable fraction of answered
// Bounded/BestEffort requests (a deterministic hash of the trace ID, so
// every replica of a request makes the same decision), replays each
// sample at Exact level off the hot path — low priority, gated on
// controller load exactly like the result cache's refresh worker — and
// compares the realized error against the claimed accuracy and claimed
// CLT error bounds.
//
// The verdicts feed per-workload, per-ladder-level calibration tables:
// bound-coverage ratios (did the exact answer land inside the claimed
// bound at the nominal confidence?), realized-accuracy histograms, and
// floor-violation counts. The tables are exported through the obs
// registry and the admin plane's /audit endpoint, closing the loop the
// ICPP'16 paper leaves open: offline-calibrated per-level accuracy
// tables silently go stale as data drifts under streaming ingestion,
// and this plane is what notices.
//
// The auditor never audits across a data epoch boundary: a sample
// stamped with the epoch its answer was computed against is skipped if
// the live epoch has moved by replay time, because ground truth for the
// old answer no longer exists.
package audit
