package audit

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// passReplay echoes the sample's estimates: zero error, every bound
// trivially covers.
func passReplay(_ context.Context, s *Sample) ([]float64, error) {
	return append([]float64(nil), s.Estimates...), nil
}

func newTestAuditor(t *testing.T, cfg Config) *Auditor {
	t.Helper()
	if cfg.Replay == nil {
		cfg.Replay = passReplay
	}
	if cfg.Interval == 0 {
		cfg.Interval = time.Microsecond
	}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Close)
	return a
}

func TestNewRequiresReplay(t *testing.T) {
	if _, err := New(Config{}); !errors.Is(err, ErrNoReplay) {
		t.Fatalf("New without Replay = %v, want ErrNoReplay", err)
	}
}

func TestShouldSampleDeterministicAndProportional(t *testing.T) {
	a := newTestAuditor(t, Config{SampleFraction: 0.1})
	hits := 0
	for id := uint64(1); id <= 100_000; id++ {
		first := a.ShouldSample(id)
		if first != a.ShouldSample(id) {
			t.Fatalf("ShouldSample(%d) not deterministic", id)
		}
		if first {
			hits++
		}
	}
	// splitmix64 over sequential IDs: the hit rate tracks the fraction.
	if hits < 9_000 || hits > 11_000 {
		t.Fatalf("sampled %d of 100k at fraction 0.1, want ~10k", hits)
	}
	// Fraction >= 1 samples everything; a nil auditor nothing.
	all := newTestAuditor(t, Config{SampleFraction: 1})
	if !all.ShouldSample(42) || !all.ShouldSample(0) {
		t.Fatal("fraction 1 must sample every id")
	}
	var nilA *Auditor
	if nilA.ShouldSample(42) {
		t.Fatal("nil auditor sampled")
	}
	if nilA.Submit(&Sample{}) {
		t.Fatal("nil auditor accepted a sample")
	}
	nilA.Close()
	if st := nilA.Stats(); st != (Stats{}) {
		t.Fatalf("nil auditor stats = %+v", st)
	}
}

func TestShouldSampleUntracedFallback(t *testing.T) {
	a := newTestAuditor(t, Config{SampleFraction: 0.5})
	// id 0 (tracing off) substitutes a counter: over many calls the rate
	// still tracks the fraction rather than collapsing to one decision.
	hits := 0
	for i := 0; i < 10_000; i++ {
		if a.ShouldSample(0) {
			hits++
		}
	}
	if hits < 4_000 || hits > 6_000 {
		t.Fatalf("untraced sampling hit %d of 10k at fraction 0.5", hits)
	}
}

func TestShouldSampleDoesNotAllocate(t *testing.T) {
	a := newTestAuditor(t, Config{SampleFraction: 0.05})
	allocs := testing.AllocsPerRun(500, func() {
		a.ShouldSample(0xabcdef12345)
	})
	if allocs != 0 {
		t.Fatalf("ShouldSample allocates %.1f/op, want 0", allocs)
	}
}

func TestJudgeRelErr(t *testing.T) {
	s := &Sample{
		Class:           ClassBounded,
		MinAccuracy:     0.9,
		ClaimedAccuracy: 0.97,
		Estimates:       []float64{100, 200},
		Bounds:          []float64{8, 3},
	}
	exact := []float64{105, 202}
	v := Judge(s, exact)
	wantRealized := 1 - (5.0/105+2.0/202)/2
	if math.Abs(v.RealizedAccuracy-wantRealized) > 1e-12 {
		t.Fatalf("realized = %g, want %g", v.RealizedAccuracy, wantRealized)
	}
	if math.Abs(v.AccuracyGap-(0.97-wantRealized)) > 1e-12 {
		t.Fatalf("gap = %g", v.AccuracyGap)
	}
	// |100-105| <= 8 covers; |200-202| <= 3 covers.
	if v.BoundsTotal != 2 || v.BoundsCovered != 2 {
		t.Fatalf("bounds = %d/%d, want 2/2", v.BoundsCovered, v.BoundsTotal)
	}
	if v.FloorViolated {
		t.Fatal("floor should hold at realized ~0.97")
	}
	// Tight bounds that miss.
	s.Bounds = []float64{1, 1}
	if v := Judge(s, exact); v.BoundsCovered != 0 {
		t.Fatalf("tight bounds covered = %d, want 0", v.BoundsCovered)
	}
	// Floor violation: realized far below the floor.
	bad := &Sample{Class: ClassBounded, MinAccuracy: 0.9, Estimates: []float64{10}}
	if v := Judge(bad, []float64{100}); !v.FloorViolated {
		t.Fatalf("floor not violated: %+v", v)
	}
	// Only Bounded requests have floors.
	be := &Sample{Class: 2, MinAccuracy: 0.9, Estimates: []float64{10}}
	if v := Judge(be, []float64{100}); v.FloorViolated {
		t.Fatal("BestEffort cannot violate a floor")
	}
}

func TestJudgeRelErrEdgeCases(t *testing.T) {
	// Both zero: exact. Only exact zero: full error. Length mismatch:
	// missing elements count as full error.
	v := Judge(&Sample{Estimates: []float64{0, 5}}, []float64{0, 0})
	if got, want := v.RealizedAccuracy, 1-0.5; got != want {
		t.Fatalf("zero handling: realized = %g, want %g", got, want)
	}
	v = Judge(&Sample{Estimates: []float64{7}}, []float64{7, 7})
	if got, want := v.RealizedAccuracy, 0.5; got != want {
		t.Fatalf("length mismatch: realized = %g, want %g", got, want)
	}
	// Empty both ways: no error.
	if v := Judge(&Sample{}, nil); v.RealizedAccuracy != 1 {
		t.Fatalf("empty judge realized = %g, want 1", v.RealizedAccuracy)
	}
	// Relative error caps at 1: realized never goes negative.
	if v := Judge(&Sample{Estimates: []float64{1e9}}, []float64{1}); v.RealizedAccuracy < 0 {
		t.Fatalf("realized = %g, want >= 0", v.RealizedAccuracy)
	}
}

func TestJudgeOverlap(t *testing.T) {
	s := &Sample{Mode: ModeOverlap, Estimates: []float64{1, 2, 3, 4}}
	if v := Judge(s, []float64{2, 3, 9}); math.Abs(v.RealizedAccuracy-2.0/3) > 1e-12 {
		t.Fatalf("recall = %g, want 2/3", v.RealizedAccuracy)
	}
	if v := Judge(s, nil); v.RealizedAccuracy != 1 {
		t.Fatalf("empty-exact recall = %g, want 1", v.RealizedAccuracy)
	}
}

func TestAuditorAccountingInvariant(t *testing.T) {
	var replays atomic.Int64
	a := newTestAuditor(t, Config{
		SampleFraction: 1,
		QueueLen:       4,
		Replay: func(_ context.Context, s *Sample) ([]float64, error) {
			replays.Add(1)
			if s.Workload == "boom" {
				return nil, errors.New("replay failed")
			}
			return passReplay(nil, s)
		},
	})
	for i := 0; i < 50; i++ {
		w := "agg"
		if i%5 == 0 {
			w = "boom"
		}
		a.Submit(&Sample{TraceID: uint64(i + 1), Workload: w, Estimates: []float64{1}})
	}
	if !a.Drain(5 * time.Second) {
		t.Fatalf("drain timed out: %+v", a.Stats())
	}
	a.Close()
	st := a.Stats()
	if st.Sampled != 50 {
		t.Fatalf("sampled = %d, want 50", st.Sampled)
	}
	if st.Sampled != st.Audited+st.SkippedStale+st.ReplayErrs+st.Dropped {
		t.Fatalf("accounting broken: %+v", st)
	}
	if st.ReplayErrs == 0 {
		t.Fatalf("no replay errors recorded: %+v", st)
	}
	// Closed auditor: further submits are counted dropped, not lost.
	a.Submit(&Sample{TraceID: 999})
	st2 := a.Stats()
	if st2.Sampled != 51 || st2.Dropped != st.Dropped+1 {
		t.Fatalf("post-close submit accounting: %+v", st2)
	}
}

func TestAuditorGateRequeues(t *testing.T) {
	var open atomic.Bool
	var replays atomic.Int64
	a := newTestAuditor(t, Config{
		SampleFraction: 1,
		Gate:           func() bool { return open.Load() },
		Replay: func(_ context.Context, s *Sample) ([]float64, error) {
			replays.Add(1)
			return passReplay(nil, s)
		},
	})
	a.Submit(&Sample{TraceID: 1, Estimates: []float64{1}})
	time.Sleep(20 * time.Millisecond)
	if replays.Load() != 0 {
		t.Fatal("replay ran with the gate closed")
	}
	open.Store(true)
	if !a.Drain(5 * time.Second) {
		t.Fatalf("drain after gate opened: %+v", a.Stats())
	}
	if replays.Load() != 1 || a.Stats().Audited != 1 {
		t.Fatalf("replays = %d, stats = %+v", replays.Load(), a.Stats())
	}
}

func TestAuditorSkipsStaleEpoch(t *testing.T) {
	var epoch atomic.Uint64
	epoch.Store(7)
	swapDuringReplay := atomic.Bool{}
	a := newTestAuditor(t, Config{
		SampleFraction: 1,
		Epoch:          func() uint64 { return epoch.Load() },
		Replay: func(_ context.Context, s *Sample) ([]float64, error) {
			if swapDuringReplay.Load() {
				epoch.Store(epoch.Load() + 1)
			}
			return passReplay(nil, s)
		},
	})
	// Pre-replay staleness: the sample's epoch is already behind.
	a.Submit(&Sample{TraceID: 1, Epoch: 6, Estimates: []float64{1}})
	// Current epoch: audits cleanly.
	a.Submit(&Sample{TraceID: 2, Epoch: 7, Estimates: []float64{1}})
	if !a.Drain(5 * time.Second) {
		t.Fatalf("drain: %+v", a.Stats())
	}
	st := a.Stats()
	if st.SkippedStale != 1 || st.Audited != 1 {
		t.Fatalf("stats = %+v, want 1 stale + 1 audited", st)
	}
	// Mid-replay swap: the exact answer saw newer data, so the verdict
	// must be discarded even though the replay succeeded.
	swapDuringReplay.Store(true)
	a.Submit(&Sample{TraceID: 3, Epoch: 7, Estimates: []float64{1}})
	if !a.Drain(5 * time.Second) {
		t.Fatalf("drain: %+v", a.Stats())
	}
	st = a.Stats()
	if st.SkippedStale != 2 || st.Audited != 1 {
		t.Fatalf("mid-replay swap not skipped: %+v", st)
	}
}

func TestAuditorCalibrationTables(t *testing.T) {
	var onVerdicts atomic.Int64
	a := newTestAuditor(t, Config{
		SampleFraction: 1,
		Replay: func(_ context.Context, s *Sample) ([]float64, error) {
			// Exact is 10% above every estimate: realized ~0.909.
			out := make([]float64, len(s.Estimates))
			for i, e := range s.Estimates {
				out[i] = e * 1.1
			}
			return out, nil
		},
		OnVerdict: func(_ *Sample, _ Verdict) { onVerdicts.Add(1) },
	})
	for i := 0; i < 10; i++ {
		a.Submit(&Sample{
			TraceID:         uint64(i + 1),
			Workload:        "agg",
			Level:           2,
			Class:           ClassBounded,
			MinAccuracy:     0.95, // violated: realized ~0.909
			ClaimedAccuracy: 0.99,
			Estimates:       []float64{100},
			Bounds:          []float64{20}, // |100-110| <= 20: covered
		})
	}
	a.Submit(&Sample{
		TraceID: 99, Workload: "search", Level: 0, Mode: ModeOverlap,
		Estimates: []float64{1, 2}, ClaimedAccuracy: 1,
	})
	if !a.Drain(5 * time.Second) {
		t.Fatalf("drain: %+v", a.Stats())
	}
	tables := a.Tables()
	if len(tables) != 2 {
		t.Fatalf("tables = %d, want 2", len(tables))
	}
	// Sorted by workload: agg before search.
	agg := tables[0]
	if agg.Workload != "agg" || agg.Level != 2 || agg.Samples != 10 {
		t.Fatalf("agg table: %+v", agg)
	}
	if agg.FloorViolations != 10 {
		t.Fatalf("violations = %d, want 10", agg.FloorViolations)
	}
	if agg.BoundCoverage != 1 || agg.BoundsTotal != 10 {
		t.Fatalf("bound coverage: %+v", agg)
	}
	wantRealized := 1 - (10.0 / 110.0)
	if math.Abs(agg.MeanRealized-wantRealized) > 1e-9 || agg.MeanClaimed != 0.99 {
		t.Fatalf("means: realized %g claimed %g", agg.MeanRealized, agg.MeanClaimed)
	}
	var histSum int64
	for _, c := range agg.AccuracyHistogram {
		histSum += c
	}
	if histSum != 10 {
		t.Fatalf("histogram mass = %d, want 10", histSum)
	}
	// Search workload shipped no bounds: coverage is the -1 sentinel.
	search := tables[1]
	if search.Workload != "search" || search.BoundCoverage != -1 {
		t.Fatalf("search table: %+v", search)
	}
	deadline := time.Now().Add(2 * time.Second)
	for onVerdicts.Load() != 11 {
		if time.Now().After(deadline) {
			t.Fatalf("OnVerdict fired %d times, want 11", onVerdicts.Load())
		}
		time.Sleep(time.Millisecond)
	}
	rep := a.Report()
	if rep.Stats.Audited != 11 || len(rep.Tables) != 2 {
		t.Fatalf("report: %+v", rep)
	}
	if a.Stats().Violations != 10 {
		t.Fatalf("violations counter = %d", a.Stats().Violations)
	}
}

// TestAuditorCloseDuringSubmits races Close against live Submits and
// table reads; run with -race. The accounting invariant must hold after.
func TestAuditorCloseDuringSubmits(t *testing.T) {
	a := newTestAuditor(t, Config{SampleFraction: 1, QueueLen: 8})
	var wg sync.WaitGroup
	var submitted atomic.Int64
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				a.Submit(&Sample{TraceID: uint64(i + 1), Estimates: []float64{1}})
				submitted.Add(1)
			}
		}()
	}
	time.Sleep(2 * time.Millisecond)
	a.Close()
	a.Close() // idempotent
	wg.Wait()
	// Samples queued at the instant of Close are drained into dropped by
	// Close itself, but the worker may still have been mid-audit; give
	// the final counter updates a beat.
	deadline := time.Now().Add(2 * time.Second)
	for {
		st := a.Stats()
		if st.Sampled == submitted.Load() &&
			st.Sampled == st.Audited+st.SkippedStale+st.ReplayErrs+st.Dropped {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("accounting never settled: %+v (submitted %d)", st, submitted.Load())
		}
		time.Sleep(time.Millisecond)
	}
}

// BenchmarkAuditNotSampled is the CI-guarded zero-alloc check for the
// hot path with auditing enabled: the per-request cost for the ~95% of
// requests the sampler passes over is one hash and one compare.
func BenchmarkAuditNotSampled(b *testing.B) {
	a, err := New(Config{SampleFraction: 0.0001, Replay: passReplay})
	if err != nil {
		b.Fatal(err)
	}
	defer a.Close()
	b.ReportAllocs()
	n := 0
	for i := 0; i < b.N; i++ {
		if a.ShouldSample(uint64(i)*2654435761 + 12345) {
			n++
		}
	}
	_ = n
}
