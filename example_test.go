package accuracytrader_test

import (
	"fmt"

	at "accuracytrader"
)

// matrix is a tiny FeatureSource: 40 points in two obvious clusters.
type matrix struct{}

func (matrix) NumPoints() int   { return 40 }
func (matrix) NumFeatures() int { return 3 }
func (matrix) Features(i int) []at.FeatureCell {
	v := 1.0
	if i >= 20 {
		v = 9.0
	}
	return []at.FeatureCell{
		{Col: 0, Val: v},
		{Col: 1, Val: v + 0.1*float64(i%4)},
		{Col: 2, Val: v - 0.1*float64(i%3)},
	}
}

// ExampleBuildSynopsis builds the offline synopsis of a data subset: the
// paper's step 1 (SVD), step 2 (R-tree grouping) and the index file.
func ExampleBuildSynopsis() {
	syn, err := at.BuildSynopsis(matrix{}, at.SynopsisConfig{
		SVD:              at.SVDConfig{Dims: 2, Epochs: 20, Seed: 7},
		CompressionRatio: 5,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("points:", syn.NumPoints())
	fmt.Println("aggregated points:", syn.NumGroups())
	// Output:
	// points: 40
	// aggregated points: 6
}

// stubEngine is a minimal Algorithm 1 engine: correlations are fixed and
// each processed set is recorded.
type stubEngine struct{ order []int }

func (s *stubEngine) ProcessSynopsis() []float64 { return []float64{0.2, 0.9, 0.5} }
func (s *stubEngine) ProcessSet(g int)           { s.order = append(s.order, g) }

// ExampleRun executes Algorithm 1 with a two-set budget: the most
// correlated member sets are processed first.
func ExampleRun() {
	e := &stubEngine{}
	trace := at.Run(e, at.BudgetContinue(2), 0)
	fmt.Println("sets processed:", trace.SetsProcessed)
	fmt.Println("order:", e.order)
	// Output:
	// sets processed: 2
	// order: [1 2]
}
