package accuracytrader

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

// TestEveryInternalPackageHasDocComment enforces the documentation
// floor: every internal package carries a package doc comment in a
// dedicated doc.go, so godoc explains what each package implements (the
// paper section or the extension) before anyone reads code.
func TestEveryInternalPackageHasDocComment(t *testing.T) {
	dirs, err := filepath.Glob("internal/*")
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) < 10 {
		t.Fatalf("only %d internal packages found — wrong working directory?", len(dirs))
	}
	for _, dir := range dirs {
		info, err := os.Stat(dir)
		if err != nil || !info.IsDir() {
			continue
		}
		docPath := filepath.Join(dir, "doc.go")
		if _, err := os.Stat(docPath); err != nil {
			t.Errorf("%s: no doc.go", dir)
			continue
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, docPath, nil, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			t.Errorf("%s: %v", docPath, err)
			continue
		}
		if f.Doc == nil || len(f.Doc.Text()) < 40 {
			t.Errorf("%s: missing or trivial package doc comment", docPath)
		}
	}
}
