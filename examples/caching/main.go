// Caching: the accuracy-aware result cache (internal/rescache) end to
// end on the live runtime — the observation being exploited: with
// Zipf-skewed traffic from many users, most requests repeat, so the
// cheapest approximate answer is one that was already computed.
//
// The demo drives the aggregation workload through the accuracy-aware
// frontend with a result cache in front of admission and shows, in
// phases:
//
//  1. Zipf traffic past the backend's saturation rate: the cache
//     absorbs the popular head, goodput recovers and the tail
//     collapses, while the no-cache phase queues and sheds.
//  2. The accuracy-floor hit rule: the same cached entry serves
//     BestEffort and Bounded{0.90} requests but never a request whose
//     floor exceeds its recorded accuracy — Exact requests miss until
//     an exact answer has been stored.
//  3. Refresh-to-exact: a popular coarse entry is upgraded to the
//     exact answer by the low-priority background worker, so hits get
//     *more* accurate over time.
//  4. Epoch invalidation: a data update rebuilds the synopses and
//     bumps the cache epoch; stale entries are discarded lazily on
//     their next lookup and recomputed from the new data.
//
// Run with: go run ./examples/caching
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	at "accuracytrader"
	"accuracytrader/internal/netsvc"
	"accuracytrader/internal/stats"
	"accuracytrader/internal/workload"
)

const (
	shards     = 4
	keys       = 16
	rowsPer    = 1500
	deadline   = 50 * time.Millisecond
	perRowCost = 6 * time.Microsecond // modeled scan cost per fact row
	numQueries = 80
	zipfSkew   = 1.1
	phaseFor   = 1500 * time.Millisecond
)

func classOf(r int) at.SLO {
	switch r % 10 {
	case 0, 1:
		return at.ExactSLO()
	case 2, 3, 4:
		return at.BoundedSLO(0.9)
	default:
		return at.BestEffortSLO()
	}
}

// buildComps generates the fact shards and their synopsis ladders.
func buildComps(seed uint64) ([]*at.AggComponent, *workload.FactsData) {
	fcfg := workload.DefaultFactsConfig()
	fcfg.RowsPerSubset = rowsPer
	fcfg.Keys = keys
	fcfg.Seed = seed
	data := workload.GenerateFacts(fcfg, shards)
	comps := make([]*at.AggComponent, shards)
	for i, tab := range data.Subsets {
		c, err := at.BuildAggComponent(tab, at.AggConfig{
			Rates: []float64{0.05, 0.12, 0.25, 0.45}, MinSample: 8, Seed: seed ^ 0xa9,
		})
		if err != nil {
			log.Fatal(err)
		}
		comps[i] = c
	}
	return comps, data
}

func main() {
	comps, data := buildComps(17)

	// Calibrate each ladder level's accuracy against exact answers and
	// sample the Zipf query population.
	queries := data.SampleAggQueries(99, numQueries)
	levels := comps[0].Syn.Levels()
	levelAcc := make([]float64, levels)
	for l := 0; l < levels; l++ {
		levelAcc[l] = at.MeasureAggLevelAccuracy(comps, queries[:32], l)
	}
	fmt.Printf("calibrated ladder accuracy (coarse->fine):")
	for _, a := range levelAcc {
		fmt.Printf(" %.3f", a)
	}
	fmt.Println()

	// The live stack: modeled-cost backend -> cluster -> frontend with
	// the result cache ahead of admission.
	backend := at.NewNetAggBackend(comps, at.NetBackendOptions{
		UnitCost: perRowCost, SubBudget: 4 * deadline / 5, IMaxFrac: 0.4,
	})
	handlers := make([]at.Handler, shards)
	for i := 0; i < shards; i++ {
		subset := i
		handlers[i] = func(ctx context.Context, payload interface{}) (interface{}, error) {
			sub := *(payload.(*at.WireRequest))
			sub.Subset = int32(subset)
			if slo, ok := at.SLOFrom(ctx); ok {
				sub.SLO, sub.MinAccuracy = uint8(slo.Kind), slo.MinAccuracy
			}
			if lv, ok := at.LevelFrom(ctx); ok {
				sub.Level = int16(lv)
			}
			return backend(ctx, &sub), nil
		}
	}
	cl, err := at.NewCluster(handlers, at.WaitAll, at.ClusterOptions{Deadline: 6 * deadline})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	cache, err := at.NewResultCache(at.ResultCacheConfig{
		Capacity:        48,
		BestEffortFloor: 0.6,
		RefreshBelow:    0.99,
		RefreshInterval: 5 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cache.Close()
	ctrl, err := at.NewDegradationController(at.DegradationConfig{
		Levels: levels, LevelAccuracy: levelAcc, InflightSaturation: 6 * shards,
	})
	if err != nil {
		log.Fatal(err)
	}
	fe, err := at.NewFrontend(cl, at.FrontendOptions{
		Replicas: 2,
		Admission: []at.AdmissionPolicy{
			at.NewMaxInflight(6 * shards),
			at.NewQueueWatermark(0.35, 0.85),
		},
		Controller: ctrl,
		Cache:      cache,
		CacheKey: func(payload interface{}) (uint64, bool) {
			req, ok := payload.(*at.WireRequest)
			if !ok {
				return 0, false
			}
			return at.WireCacheKey(req), true
		},
		CacheRefresh: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// One canonical template per query: identical arrivals share the
	// pointer, the canonical key, and eventually the cached entry.
	templates := make([]*at.WireRequest, len(queries))
	for i, q := range queries {
		templates[i] = &at.WireRequest{
			Kind: at.WireKindAgg, Subset: -1, Level: -1, SLO: 0xff,
			Agg: &at.WireAggRequest{Op: uint8(q.Op), Lo: q.Lo, Hi: q.Hi},
		}
	}

	// Phase 1 — Zipf load past saturation. ~139/s is this backend's
	// capacity (7.2ms modeled work per request); offer 180/s.
	fmt.Println("\n-- phase 1: Zipf open-loop load, 180 req/s offered --")
	runLoad := func(label string) {
		zrng := stats.NewRNG(5)
		zipf := stats.NewZipf(zrng, len(queries), zipfSkew)
		var mu sync.Mutex
		lats := []float64{}
		rejected, hits0 := 0, fe.Stats().CacheHits
		netsvc.OpenLoop(stats.NewRNG(7), 180, phaseFor, func(r int) {
			tmpl := templates[zipf.Draw()]
			t0 := time.Now()
			_, err := fe.Call(context.Background(), tmpl, classOf(r))
			lat := float64(time.Since(t0)) / float64(time.Millisecond)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				rejected++
				return
			}
			lats = append(lats, lat)
		})
		hitPct := 100 * float64(fe.Stats().CacheHits-hits0) / float64(len(lats)+rejected)
		fmt.Printf("  %-12s answered %4d  shed %3d  hit%% %5.1f  p50 %6.1fms  p99 %6.1fms\n",
			label, len(lats), rejected, hitPct, stats.Percentile(lats, 50), stats.Percentile(lats, 99))
	}
	runLoad("cold cache")
	runLoad("warm cache")

	// Phase 2 — the accuracy-floor hit rule, on a query the Zipf load
	// (and hence the refresh worker) has not touched.
	fmt.Println("\n-- phase 2: the hit rule `cached accuracy >= request floor` --")
	tmpl := templates[len(templates)-1]
	show := func(slo at.SLO, note string) {
		res, err := fe.Call(context.Background(), tmpl, slo)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s -> fromCache=%-5v recorded accuracy %.3f   (%s)\n",
			slo, res.FromCache, res.EstimatedAccuracy, note)
	}
	show(at.BestEffortSLO(), "cold: computed at the finest level, entry stored")
	show(at.BoundedSLO(0.95), "floor 0.95 > recorded accuracy: recomputes, no hit")
	show(at.ExactSLO(), "floor 1: recomputes exactly, entry upgraded to accuracy 1")
	show(at.ExactSLO(), "the exact answer now serves even Exact requests")
	show(at.BoundedSLO(0.95), "and every lower floor too")

	// Phase 3 — refresh-to-exact upgrades a popular coarse entry.
	fmt.Println("\n-- phase 3: background refresh-to-exact --")
	tmpl2 := templates[1]
	if _, err := fe.Call(context.Background(), tmpl2, at.BestEffortSLO()); err != nil {
		log.Fatal(err)
	}
	refined := false
	for i := 0; i < 400 && !refined; i++ {
		res, err := fe.Call(context.Background(), tmpl2, at.BestEffortSLO())
		if err != nil {
			log.Fatal(err)
		}
		if res.FromCache && res.EstimatedAccuracy == 1 {
			fmt.Printf("  entry refined to exact after %d hits (refreshes so far: %d)\n",
				i+1, cache.Stats().Refreshes)
			refined = true
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !refined {
		fmt.Println("  (refresh worker did not get to this entry in time)")
	}

	// Phase 4 — a data update invalidates via the epoch. Close stops
	// the background refresh worker and waits it out, so swapping the
	// components underneath the handlers is race-free (lookups and
	// stores keep working without the worker).
	fmt.Println("\n-- phase 4: synopsis update -> epoch bump -> lazy invalidation --")
	cache.Close()
	fresh, _ := buildComps(18) // updated data, rebuilt ladders
	copy(comps, fresh)         // handlers see the new components
	cache.BumpEpoch()
	res, err := fe.Call(context.Background(), tmpl, at.BestEffortSLO())
	if err != nil {
		log.Fatal(err)
	}
	st := cache.Stats()
	fmt.Printf("  after update: fromCache=%v (recomputed from new data), stale discards %d\n",
		res.FromCache, st.Stale)
	fmt.Printf("\ncache stats: %+v\n", st)
}
