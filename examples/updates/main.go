// Updates: the offline synopsis-management lifecycle (paper §2.2/§3.1) on
// a search component — creation, persistence, incremental updating with
// new and changed pages, low-priority background updating, and the
// load-adaptive synopsis ladder.
//
// Run with: go run ./examples/updates
package main

import (
	"bytes"
	"fmt"
	"log"
	"sync/atomic"
	"time"

	at "accuracytrader"
	"accuracytrader/internal/synopsis"
	"accuracytrader/internal/textindex"
	"accuracytrader/internal/workload"
)

func main() {
	ccfg := workload.DefaultCorpusConfig()
	ccfg.DocsPerSubset = 300
	ccfg.Seed = 11
	data := workload.GenerateCorpus(ccfg, 1)
	ix := data.Subsets[0]

	// Creation: SVD reduction + R-tree grouping + content aggregation.
	t0 := time.Now()
	comp, err := textindex.BuildComponent(ix, at.SynopsisConfig{
		SVD:              at.SVDConfig{Dims: 3, Epochs: 25, Seed: 11},
		CompressionRatio: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("created synopsis for %d pages in %v: %d aggregated pages (%.1f pages each)\n",
		ix.NumDocs(), time.Since(t0).Round(time.Millisecond),
		comp.Syn.NumGroups(), comp.Syn.MeanGroupSize())

	// Persistence: store the R-tree + index file, reload, keep updating.
	var buf bytes.Buffer
	if err := comp.Syn.Save(&buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("persisted synopsis: %d bytes (gob)\n", buf.Len())

	// Incremental updating: 5% new pages and 5% changed pages. Only the
	// affected groups are re-aggregated.
	var changes []at.Change
	for i := 0; i < 15; i++ {
		doc := ix.Add(data.PageText(uint64(1000+i), i%9))
		changes = append(changes, at.Change{Kind: at.Add,
			Cells: textindex.FeatureSource{Ix: ix}.Features(doc)})
	}
	for i := 0; i < 15; i++ {
		doc := i * 7 % 300
		ix.Update(doc, data.PageText(uint64(2000+i), (i+3)%9))
		changes = append(changes, at.Change{Kind: at.Modify, Point: doc,
			Cells: textindex.FeatureSource{Ix: ix}.Features(doc)})
	}
	t1 := time.Now()
	st, err := comp.ApplyChanges(changes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("applied %d adds + %d changes in %v: %d groups kept, %d re-aggregated\n",
		st.Added, st.Modified, time.Since(t1).Round(time.Millisecond),
		st.GroupsKept, st.GroupsReaggregated)

	// Low-priority background updating: changes queue while the
	// component is "busy" and flow once it goes idle.
	var busy atomic.Bool
	busy.Store(true)
	sched := synopsis.NewUpdateScheduler(comp.ApplyChanges, busy.Load, 2*time.Millisecond)
	sched.Start()
	doc := ix.Add(data.PageText(3000, 4))
	sched.Enqueue(at.Change{Kind: at.Add, Cells: textindex.FeatureSource{Ix: ix}.Features(doc)})
	time.Sleep(10 * time.Millisecond)
	applied, skipped, _ := sched.Stats()
	fmt.Printf("scheduler under load: applied=%d, skipped rounds=%d, pending=%d\n",
		applied, skipped, sched.Pending())
	busy.Store(false)
	for {
		if a, _, _ := sched.Stats(); a > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	sched.Stop()
	applied, _, _ = sched.Stats()
	fmt.Printf("scheduler after idle: applied=%d pending=%d\n", applied, sched.Pending())

	// Load-adaptive ladder: alternative cuts for heavy-load answering.
	ladder := comp.Syn.BuildLadder(8, 30, 100)
	for i, ratio := range ladder.Ratios {
		fmt.Printf("ladder level %d (ratio %3d): %d groups\n", i, ratio, len(ladder.Cuts[i]))
	}
	_, idleCut := ladder.Select(0)
	_, satCut := ladder.Select(1)
	fmt.Printf("idle selects %d groups; saturated selects %d groups\n", len(idleCut), len(satCut))
}
