// Quickstart: build a synopsis for a small numeric dataset and answer a
// request with Algorithm 1 through the public accuracytrader API.
//
// The dataset is a toy user-item rating matrix with two obvious taste
// clusters. The request asks for the rating of one target item by an
// active user from cluster A; the engine first answers from the
// aggregated users (synopsis), then refines with the most correlated
// member sets until the deadline.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	at "accuracytrader"
)

// dataset is a FeatureSource over a dense toy matrix: 60 users x 12
// items, two taste clusters.
type dataset struct{ rows [][]float64 }

func (d dataset) NumPoints() int   { return len(d.rows) }
func (d dataset) NumFeatures() int { return len(d.rows[0]) }
func (d dataset) Features(i int) []at.FeatureCell {
	cells := make([]at.FeatureCell, 0, len(d.rows[i]))
	for c, v := range d.rows[i] {
		if v > 0 {
			cells = append(cells, at.FeatureCell{Col: int32(c), Val: v})
		}
	}
	return cells
}

// engine implements Algorithm 1 for "predict item T's rating": the
// correlation of an aggregated user is its profile similarity to the
// active user; the result is the similarity-weighted mean of member
// ratings on T, refined group by group.
type engine struct {
	data    dataset
	groups  []at.Group
	aggs    [][]float64 // mean profile per group
	active  []float64
	target  int
	num     float64
	den     float64
	initial float64
}

// sim is the mean-centered cosine similarity (Pearson-like), floored at
// zero so dissimilar users do not contribute.
func sim(a, b []float64) float64 {
	ma, mb := mean(a), mean(b)
	var dot, na, nb float64
	for i := range a {
		x, y := a[i]-ma, b[i]-mb
		dot += x * y
		na += x * x
		nb += y * y
	}
	if na == 0 || nb == 0 {
		return 0
	}
	s := dot / math.Sqrt(na*nb)
	if s < 0 {
		return 0
	}
	return s
}

func mean(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

func (e *engine) ProcessSynopsis() []float64 {
	corr := make([]float64, len(e.groups))
	for g, prof := range e.aggs {
		s := sim(e.active, prof)
		corr[g] = s
		e.num += s * prof[e.target]
		e.den += s
	}
	if e.den > 0 {
		e.initial = e.num / e.den
	}
	return corr
}

func (e *engine) ProcessSet(g int) {
	// Replace the group's aggregated contribution with its members'.
	s := sim(e.active, e.aggs[g])
	e.num -= s * e.aggs[g][e.target]
	e.den -= s
	for _, u := range e.groups[g].Members {
		row := e.data.rows[u]
		w := sim(e.active, row)
		e.num += w * row[e.target]
		e.den += w
	}
}

func (e *engine) estimate() float64 {
	if e.den <= 0 {
		return 0
	}
	return e.num / e.den
}

func main() {
	// Two clusters: users 0..29 love the first six items, users 30..59
	// the last six.
	d := dataset{}
	for u := 0; u < 60; u++ {
		row := make([]float64, 12)
		for i := range row {
			lo, hi := 0, 6
			if u >= 30 {
				lo, hi = 6, 12
			}
			if i >= lo && i < hi {
				row[i] = 4 + float64((u+i)%2)
			} else {
				row[i] = 1 + float64((u*i)%2)
			}
		}
		d.rows = append(d.rows, row)
	}

	syn, err := at.BuildSynopsis(d, at.SynopsisConfig{
		SVD:              at.SVDConfig{Dims: 3, Epochs: 30, Seed: 1},
		CompressionRatio: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synopsis: %d original points -> %d aggregated points (mean group size %.1f)\n",
		syn.NumPoints(), syn.NumGroups(), syn.MeanGroupSize())

	// Active user from cluster A asks about item 2.
	active := make([]float64, 12)
	for i := 0; i < 6; i++ {
		active[i] = 4.5
	}
	for i := 6; i < 12; i++ {
		active[i] = 1.5
	}
	e := &engine{data: d, groups: syn.Groups(), target: 2, active: active}
	for _, g := range syn.Groups() {
		prof := make([]float64, 12)
		for _, u := range g.Members {
			for i, v := range d.rows[u] {
				prof[i] += v / float64(len(g.Members))
			}
		}
		e.aggs = append(e.aggs, prof)
	}

	trace := at.RunWithDeadline(e, 100*time.Millisecond, 0)
	fmt.Printf("initial (synopsis-only) estimate: %.2f\n", e.initial)
	fmt.Printf("refined estimate after %d of %d sets: %.2f (expected ~4.5)\n",
		trace.SetsProcessed, syn.NumGroups(), e.estimate())
}
