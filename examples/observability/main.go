// Observability: watching the accuracy/latency trade happen, request
// by request.
//
// The same one-process topology as examples/distributed — component
// servers, aggregator, accuracy-aware frontend, front server — plus
// the observability plane: the frontend's counters land in a unified
// metrics registry, every request records a decision trace (admission
// verdict, chosen ladder level, cache outcome, per-subset sub-operation
// spans with the component servers' queue/exec spans stitched in over
// the wire), and an admin HTTP endpoint serves both live
// (/metrics, /traces, /healthz, /debug/pprof).
//
// On top of that sits the accuracy audit plane: an SLO tracker
// accumulates deadline-miss/degradation/floor burn rates over sliding
// windows (/slo), and a background auditor replays a sample of
// answered requests at the Exact level off the hot path, comparing
// each claimed accuracy against ground truth (/audit). Traces the
// audit flags as anomalous are pinned into the recorder's exemplar
// store, so /traces?filter=anomaly still shows them after the ring
// has rotated past.
//
// After driving a burst of traffic under all three SLO classes, the
// program scrapes its own admin plane, prints the per-SLO-class
// deadline-budget breakdown and the audit calibration table, and
// drains gracefully.
//
// Run with: go run ./examples/observability
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	at "accuracytrader"
	"accuracytrader/internal/stats"
)

const (
	shards = 3
	rows   = 2000
	keys   = 8
	seed   = 9
)

func main() {
	// Offline: build each shard's stratified-sample synopsis ladder.
	rng := stats.NewRNG(seed)
	comps := make([]*at.AggComponent, shards)
	for s := range comps {
		tab := at.NewFactTable(keys)
		for i := 0; i < rows; i++ {
			tab.Append(int32(rng.Intn(keys)), rng.LogNormal(1.2, 0.8))
		}
		c, err := at.BuildAggComponent(tab, at.AggConfig{
			Rates: []float64{0.1, 0.3}, MinSample: 8, Seed: seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		comps[s] = c
	}

	// Component servers on loopback, one per shard.
	addrs := make([]string, shards)
	for s := 0; s < shards; s++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		srv := at.NewNetComponentServer(at.NewNetAggBackend(comps, at.NetBackendOptions{
			UnitCost: 5 * time.Microsecond,
			// Cap Algorithm 1's improvement phase so coarse levels stay
			// genuinely approximate — otherwise an unloaded backend
			// improves every sampled stratum to a full scan and the
			// audit has nothing to catch.
			IMaxFrac: 0.01,
		}), at.NetServerOptions{})
		go srv.Serve(l)
		defer srv.Close()
		addrs[s] = l.Addr().String()
	}

	// The observability plane: metrics registry + trace recorder,
	// served by the admin HTTP endpoint.
	reg := at.NewMetricsRegistry()
	rec := at.NewTraceRecorder(128, 64)
	admin := at.NewAdminPlane(reg, rec)
	adminAddr, err := admin.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer admin.Close()

	// Aggregator + frontend (counting into reg) + traced front server.
	agr, err := at.NewNetAggregator(addrs, at.NetAggregatorOptions{Deadline: 200 * time.Millisecond})
	if err != nil {
		log.Fatal(err)
	}
	defer agr.Close()
	// The fine level's claimed accuracy is deliberately optimistic
	// (think: a calibration table gone stale after data drift). The
	// controller will happily admit accuracy floors the level cannot
	// actually meet — exactly the failure the audit plane exists to
	// catch.
	ctrl, err := at.NewDegradationController(at.DegradationConfig{
		Levels:        2,
		LevelAccuracy: []float64{0.88, 0.99},
	})
	if err != nil {
		log.Fatal(err)
	}
	fe, err := at.NewFrontend(agr, at.FrontendOptions{
		Replicas:   2,
		Router:     at.NewLeastLoaded(),
		Admission:  []at.AdmissionPolicy{at.NewMaxInflight(4 * shards)},
		Controller: ctrl,
		Metrics:    reg,
	})
	if err != nil {
		log.Fatal(err)
	}
	fl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	fs := at.NewNetFrontServer(agr, fe, at.NetServerOptions{Tracer: rec})

	// The accuracy audit plane. The SLO tracker counts every reply into
	// sliding burn-rate windows; the auditor replays a sample of
	// answered requests at the Exact level in the background (sampling
	// is cranked to 100% with a fast pace here so a short demo audits
	// everything — production deployments keep the 5% default).
	slo := at.NewSLOTracker(at.DefaultSLOBudgets())
	fs.EnableSLO(slo, nil)
	admin.SetSLOTracker(slo)
	auditor, err := fs.EnableAudit(at.AuditConfig{
		SampleFraction: 1.0,
		Interval:       200 * time.Microsecond,
		Metrics:        reg,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer auditor.Close()
	admin.SetAuditSource(func() any {
		return at.AuditReport{Stats: auditor.Stats(), Tables: auditor.Tables()}
	})
	go fs.Serve(fl)

	// A burst of traffic across the three SLO classes. The first
	// request stamps its own trace ID — the reply echoes it, so a
	// client can find its exact decision trace in /traces.
	cl, err := at.DialNetClient(fl.Addr().String(), at.NetClientOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		req := &at.WireRequest{
			Kind: at.WireKindAgg, Level: -1,
			Agg: &at.WireAggRequest{Op: 0, Lo: 1.0, Hi: 40.0 + float64(i%5)},
		}
		switch i % 3 {
		case 0:
			req.SLO, req.MinAccuracy = 1, 0.9 // Bounded{0.90}
		case 1:
			req.SLO = 2 // BestEffort
		}
		if req.SLO != 0 {
			req.Deadline = time.Now().Add(30 * time.Millisecond).UnixNano()
		}
		if i == 0 {
			req.Trace = 0xfacade
		}
		ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
		rep, err := cl.Call(ctx, req)
		cancel()
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 && rep.Trace != 0xfacade {
			log.Fatalf("reply echoes trace %#x, want the stamped 0xfacade", rep.Trace)
		}
	}

	// Four requests with a 0.97 accuracy floor. The stale calibration
	// claims 0.99 at the fine level, so the controller admits them —
	// but the level's realized accuracy is lower, and the auditor's
	// Exact-level replays will flag every one as a floor violation and
	// pin its trace.
	for i := 0; i < 4; i++ {
		req := &at.WireRequest{
			Kind: at.WireKindAgg, Level: -1, SLO: 1, MinAccuracy: 0.97,
			Deadline: time.Now().Add(30 * time.Millisecond).UnixNano(),
			Agg:      &at.WireAggRequest{Op: 0, Lo: 1.0, Hi: 40.0 + float64(i)},
		}
		ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
		_, err := cl.Call(ctx, req)
		cancel()
		if err != nil {
			log.Fatal(err)
		}
	}
	cl.Close()

	// Let the background auditor finish replaying the sampled requests
	// before reading its calibration tables.
	if !auditor.Drain(5 * time.Second) {
		log.Fatal("auditor did not drain")
	}

	// Scrape the admin plane like a monitoring system would.
	fmt.Printf("admin plane on http://%s\n\n", adminAddr)
	fmt.Println("GET /metrics (frontend counters, excerpt):")
	for _, line := range strings.Split(scrape(adminAddr, "/metrics"), "\n") {
		if strings.HasPrefix(line, "frontend_") && !strings.HasPrefix(line, "#") {
			fmt.Println(" ", line)
		}
	}
	fmt.Println("\nGET /healthz:", strings.TrimSpace(scrape(adminAddr, "/healthz")))

	// The audit verdict: per-workload/per-level calibration rows —
	// claimed vs realized accuracy over the replayed sample — plus the
	// auditor's own accounting.
	st := auditor.Stats()
	fmt.Printf("\nGET /audit: sampled=%d audited=%d stale=%d errs=%d dropped=%d\n",
		st.Sampled, st.Audited, st.SkippedStale, st.ReplayErrs, st.Dropped)
	for _, tab := range auditor.Tables() {
		fmt.Printf("  %s level %d: samples=%d claimed=%.4f realized=%.4f floorViol=%d\n",
			tab.Workload, tab.Level, tab.Samples, tab.MeanClaimed, tab.MeanRealized, tab.FloorViolations)
	}

	// The SLO attainment the tracker accumulated while the burst ran
	// (class 1 = Bounded — the class carrying accuracy floors). The
	// admin plane serves the same document as JSON at /slo.
	fmt.Printf("GET /slo: %d bytes of burn-rate JSON; Bounded-class windows:\n",
		len(scrape(adminAddr, "/slo")))
	for i, w := range []string{"1m", "10m", "1h"} {
		total, miss, floor, deg := slo.Window(1, i)
		fmt.Printf("  %-3s total=%d deadlineMiss=%d floorViolations=%d degraded=%d\n",
			w, total, miss, floor, deg)
	}

	// Anomalous traces survive ring rotation: the audit pinned every
	// floor-violating trace into the exemplar store.
	anomalies := strings.Count(scrape(adminAddr, "/traces?filter=anomaly"), "\"start_unix_ns\"")
	fmt.Printf("GET /traces?filter=anomaly: %d retained anomalous traces\n", anomalies)

	// The per-SLO-class deadline-budget breakdown over every recorded
	// trace — where each class's latency budget actually went. The
	// Exact row includes the auditor's own ground-truth replays: they
	// are ordinary requests, just issued off the hot path.
	fmt.Println()
	fmt.Println(at.SummarizeTraces(rec.Snapshot(0)).Render())

	// Graceful drain: unready first (load balancers stop sending), then
	// stop accepting and finish what is queued or in flight.
	admin.SetReady(false)
	fmt.Printf("\ndrained=%v  healthz now: %s\n",
		fs.Shutdown(5*time.Second), strings.TrimSpace(scrape(adminAddr, "/healthz")))
}

// scrape GETs one admin-plane path and returns the body.
func scrape(addr net.Addr, path string) string {
	resp, err := http.Get("http://" + addr.String() + path)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	return string(b)
}
