// Liveservice: the paper's Table 1 story on real goroutines and a real
// clock. An open-loop Poisson client drives a fan-out cluster at a light
// and at an overloaded arrival rate; each policy is measured on call
// latency, and AccuracyTrader additionally on how many ranked sets its
// components managed to process (its accuracy proxy).
//
// Under overload the exact policies queue without bound, while
// AccuracyTrader's components adapt: the closer the queueing delay gets
// to the deadline, the fewer sets they process — the request latency
// stays pinned near the deadline.
//
// Run with: go run ./examples/liveservice
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	at "accuracytrader"
	"accuracytrader/internal/stats"
)

const (
	components = 8
	nGroups    = 6
	fullScan   = 12 * time.Millisecond
	deadline   = 30 * time.Millisecond
	runFor     = 3 * time.Second
)

// sleepEngine is an at.Engine whose processing cost is wall time: the
// synopsis costs fullScan/20, each ranked set fullScan/nGroups. It stands
// in for a real application engine so the demo isolates the latency
// mechanics.
type sleepEngine struct {
	sets atomic.Int64
}

func (e *sleepEngine) ProcessSynopsis() []float64 {
	time.Sleep(fullScan / 20)
	corr := make([]float64, nGroups)
	for i := range corr {
		corr[i] = float64(nGroups - i)
	}
	return corr
}

func (e *sleepEngine) ProcessSet(int) {
	time.Sleep(fullScan / nGroups)
	e.sets.Add(1)
}

func main() {
	for _, rate := range []float64{30, 250} {
		fmt.Printf("=== arrival rate %.0f req/s (component scan %v => utilisation %.2f) ===\n",
			rate, fullScan, rate*fullScan.Seconds())
		runPolicy("Basic (WaitAll)", rate, at.WaitAll, exactHandlers(), nil)
		runPolicy("Request reissue", rate, at.Hedged, exactHandlers(), nil)
		runPolicy("Partial execution", rate, at.PartialGather, exactHandlers(), nil)
		engines := make([]*sleepEngine, components)
		runPolicy("AccuracyTrader", rate, at.WaitAll, atHandlers(engines), engines)
		fmt.Println()
	}
}

func exactHandlers() []at.Handler {
	hs := make([]at.Handler, components)
	for i := range hs {
		hs[i] = func(ctx context.Context, _ interface{}) (interface{}, error) {
			time.Sleep(fullScan)
			return nil, nil
		}
	}
	return hs
}

func atHandlers(engines []*sleepEngine) []at.Handler {
	hs := make([]at.Handler, components)
	for i := range hs {
		e := &sleepEngine{}
		engines[i] = e
		hs[i] = func(ctx context.Context, _ interface{}) (interface{}, error) {
			// Algorithm 1 against the remaining request budget: queueing
			// delay has already consumed part of the deadline.
			budget := deadline
			if dl, ok := ctx.Deadline(); ok {
				budget = time.Until(dl)
			}
			if budget < 0 {
				budget = 0
			}
			trace := at.RunWithDeadline(e, budget, 0)
			return trace.SetsProcessed, nil
		}
	}
	return hs
}

func runPolicy(name string, rate float64, policy at.Policy, handlers []at.Handler, engines []*sleepEngine) {
	callDeadline := 10 * time.Second // generous for the exact policies
	if policy == at.PartialGather {
		callDeadline = deadline
	}
	if engines != nil {
		callDeadline = deadline
	}
	cl, err := at.NewCluster(handlers, policy, at.ClusterOptions{
		Deadline:   callDeadline,
		QueueLen:   4096,
		HedgeFloor: 2 * fullScan,
	})
	if err != nil {
		log.Fatal(err)
	}

	var mu sync.Mutex
	lat := stats.NewLatencyRecorder(1024)
	var wg sync.WaitGroup
	rng := stats.NewRNG(uint64(rate))
	stop := time.Now().Add(runFor)
	for time.Now().Before(stop) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			t0 := time.Now()
			if _, err := cl.Call(context.Background(), nil); err != nil {
				return
			}
			d := float64(time.Since(t0)) / float64(time.Millisecond)
			mu.Lock()
			lat.Record(d)
			mu.Unlock()
		}()
		time.Sleep(time.Duration(rng.Exp(rate) * float64(time.Second)))
	}
	wg.Wait()
	cl.Close()

	mu.Lock()
	defer mu.Unlock()
	extra := ""
	if engines != nil {
		total := int64(0)
		for _, e := range engines {
			total += e.sets.Load()
		}
		subOps := int64(lat.Count()) * int64(components)
		if subOps > 0 {
			extra = fmt.Sprintf("  (mean sets processed %.1f of %d)", float64(total)/float64(subOps), nGroups)
		}
	}
	fmt.Printf("%-20s calls %5d   p50 %7.1fms   p99 %8.1fms%s\n",
		name, lat.Count(), lat.Percentile(50), lat.Percentile(99), extra)
}
