// Distributed: the paper's deployment model on real TCP sockets, in
// one process for convenience — the same pieces deploy as separate
// processes via `attrader -serve component|aggregator`.
//
// Four component servers each hold one fact-table shard of the
// approximate-aggregation workload. An aggregator scatters every
// request over loopback connections and gathers with the same policies
// as the in-process runtime; the accuracy-aware frontend (admission,
// 2-replica least-loaded routing, calibrated degradation) sits in
// front of it, and a front server answers wire-protocol clients with
// composed, bounds-aware replies. Every hop propagates the absolute
// request deadline, so a component abandons work the moment the
// budget is gone.
//
// Run with: go run ./examples/distributed
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	at "accuracytrader"
	"accuracytrader/internal/stats"
)

const (
	shards  = 4
	rows    = 3000
	keys    = 10
	seed    = 7
	queryLo = 2.0
	queryHi = 50.0
)

func main() {
	// Offline: build each shard's stratified-sample synopsis ladder.
	rng := stats.NewRNG(seed)
	comps := make([]*at.AggComponent, shards)
	for s := range comps {
		tab := at.NewFactTable(keys)
		for i := 0; i < rows; i++ {
			tab.Append(int32(rng.Intn(keys)), rng.LogNormal(1.2, 0.8))
		}
		c, err := at.BuildAggComponent(tab, at.AggConfig{
			Rates: []float64{0.05, 0.15, 0.4}, MinSample: 8, Seed: seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		comps[s] = c
	}

	// Component servers: one loopback listener per shard.
	addrs := make([]string, shards)
	for s := 0; s < shards; s++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		// The modeled scan cost (10µs per row) restores the cluster-scale
		// cost/accuracy trade at laptop data sizes: a full exact scan
		// costs 30ms, the finest synopsis 12ms, so a 30ms budget buys an
		// approximate answer plus partial improvement — not exactness.
		srv := at.NewNetComponentServer(at.NewNetAggBackend(comps, at.NetBackendOptions{
			UnitCost: 10 * time.Microsecond,
		}), at.NetServerOptions{})
		go srv.Serve(l)
		defer srv.Close()
		addrs[s] = l.Addr().String()
	}

	// Aggregator + frontend + front server.
	agr, err := at.NewNetAggregator(addrs, at.NetAggregatorOptions{Deadline: 200 * time.Millisecond})
	if err != nil {
		log.Fatal(err)
	}
	defer agr.Close()
	ctrl, err := at.NewDegradationController(at.DegradationConfig{
		Levels:        3,
		LevelAccuracy: []float64{0.85, 0.93, 0.98},
	})
	if err != nil {
		log.Fatal(err)
	}
	fe, err := at.NewFrontend(agr, at.FrontendOptions{
		Replicas:   2,
		Router:     at.NewLeastLoaded(),
		Admission:  []at.AdmissionPolicy{at.NewMaxInflight(4 * shards)},
		Controller: ctrl,
	})
	if err != nil {
		log.Fatal(err)
	}
	fl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	fs := at.NewNetFrontServer(agr, fe, at.NetServerOptions{})
	go fs.Serve(fl)
	defer fs.Close()

	// A wire-protocol client asks for SUM(value) GROUP BY key under
	// three different accuracy contracts.
	cl, err := at.DialNetClient(fl.Addr().String(), at.NetClientOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	for _, tc := range []struct {
		name     string
		slo      uint8
		acc      float64
		deadline time.Duration
	}{
		// Exact pays its guarantee in latency (no service budget); the
		// approximate classes carry a 30ms absolute service deadline
		// that every hop propagates and spends.
		{"Exact", 0, 0, 0},
		{"Bounded{0.90}", 1, 0.90, 30 * time.Millisecond},
		{"BestEffort", 2, 0, 30 * time.Millisecond},
	} {
		req := &at.WireRequest{
			Kind: at.WireKindAgg, SLO: tc.slo, MinAccuracy: tc.acc, Level: -1,
			Agg: &at.WireAggRequest{Op: 0, Lo: queryLo, Hi: queryHi},
		}
		if tc.deadline > 0 {
			req.Deadline = time.Now().Add(tc.deadline).UnixNano()
		}
		// The transport timeout is looser than the service budget: the
		// budget bounds component work, the timeout only the round trip.
		ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
		t0 := time.Now()
		rep, err := cl.Call(ctx, req)
		lat := time.Since(t0)
		cancel()
		if err != nil {
			log.Fatal(err)
		}
		res := at.NetAggResultOf(rep.Agg)
		fmt.Printf("%-14s %6.1fms  level %d  subs %v\n",
			tc.name, float64(lat)/float64(time.Millisecond), rep.Level, rep.SubStatus)
		for k := 0; k < 3; k++ {
			fmt.Printf("  key %d: SUM ~= %9.1f +- %.1f\n", k, res.Estimate(at.AggSum, k), res.Bound(at.AggSum, k))
		}
	}
}
