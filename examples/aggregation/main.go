// Aggregation: the third application workload — BlinkDB-style
// approximate GROUP-BY aggregation (internal/agg) — end to end on the
// live goroutine runtime behind the accuracy-aware frontend.
//
// Offline, each shard's fact table becomes a ladder of stratified
// samples; the per-level accuracy is then *calibrated* by replaying
// sample queries against exact answers, and those measured accuracies
// parametrize the degradation controller — so a Bounded{0.90} SLO
// floor refers to this workload's real error metric (1 − mean relative
// error), not a guess.
//
// Online, an open-loop Poisson client drives SUM/COUNT/AVG queries with
// a mixed SLO-class population through admission → routing →
// degradation. Handlers read the frontend-selected ladder level from
// their context, answer from that level's samples via Algorithm 1, and
// bypass the synopsis entirely for Exact-class requests. The report
// shows the measured per-class latency and delivered accuracy at a calm
// and at an overloaded arrival rate.
//
// Run with: go run ./examples/aggregation
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	at "accuracytrader"
	"accuracytrader/internal/stats"
	"accuracytrader/internal/workload"
)

const (
	shards      = 6
	keys        = 24
	rowsPer     = 1500
	deadline    = 40 * time.Millisecond
	runFor      = 2 * time.Second
	perRowCost  = 4 * time.Microsecond // modeled scan cost per fact row
	calibration = 40                   // queries per level for calibration
)

func classOf(r int) at.SLO {
	switch r % 10 {
	case 0, 1:
		return at.ExactSLO()
	case 2, 3, 4:
		return at.BoundedSLO(0.9)
	default:
		return at.BestEffortSLO()
	}
}

func main() {
	fcfg := workload.DefaultFactsConfig()
	fcfg.RowsPerSubset = rowsPer
	fcfg.Keys = keys
	fcfg.Seed = 17
	data := workload.GenerateFacts(fcfg, shards)

	fmt.Printf("building %d aggregation components (%d rows each)...\n", shards, rowsPer)
	comps := make([]*at.AggComponent, shards)
	for s := range comps {
		comp, err := at.BuildAggComponent(data.Subsets[s], at.AggConfig{
			Rates:     []float64{0.03, 0.08, 0.18, 0.40},
			MinSample: 8,
			Seed:      17,
		})
		if err != nil {
			log.Fatal(err)
		}
		comps[s] = comp
	}
	levels := comps[0].Syn.Levels()

	// Calibrate: measured synopsis-only accuracy per ladder level.
	calQueries := data.SampleAggQueries(23, calibration)
	levelAcc := make([]float64, levels)
	for l := range levelAcc {
		levelAcc[l] = at.MeasureAggLevelAccuracy(comps, calQueries, l)
	}
	fmt.Printf("calibrated level accuracy (coarse->fine): ")
	for _, a := range levelAcc {
		fmt.Printf("%.3f ", a)
	}
	fmt.Println()

	queries := data.SampleAggQueries(29, 64)
	// Exact merged answers, once per distinct query.
	exactEst := make([][]float64, len(queries))
	for i, q := range queries {
		merged := at.ExactAggResult(comps[0], q)
		for _, c := range comps[1:] {
			merged.Merge(at.ExactAggResult(c, q))
		}
		exactEst[i] = merged.Estimates(q.Op)
	}

	for _, rate := range []float64{50, 600} {
		fullScan := time.Duration(rowsPer) * perRowCost
		fmt.Printf("\n=== offered %.0f req/s (exact scan %v => utilisation %.2f) ===\n",
			rate, fullScan, rate*fullScan.Seconds())
		run(rate, comps, levelAcc, queries, exactEst)
	}
}

// handler answers one sub-operation on one shard: an exact scan for
// Exact-class requests, otherwise Algorithm 1 from the
// frontend-selected ladder level within the remaining deadline. The
// modeled per-row scan cost makes queueing real on a laptop-sized
// shard, as in the other examples.
func handler(comp *at.AggComponent) at.Handler {
	return func(ctx context.Context, payload interface{}) (interface{}, error) {
		q := payload.(at.AggQuery)
		if slo, ok := at.SLOFrom(ctx); ok && slo.Kind == at.ExactSLO().Kind {
			time.Sleep(time.Duration(comp.T.NumRows()) * perRowCost)
			return at.ExactAggResult(comp, q), nil
		}
		level := comp.Syn.Levels() - 1
		if lv, ok := at.LevelFrom(ctx); ok {
			level = lv
		}
		e := at.GetAggEngine(comp, q, level)
		scan := time.Duration(comp.Syn.SampleUnits(e.Level)) * perRowCost
		time.Sleep(scan)
		at.RunWithDeadline(e, deadline-scan, 0)
		res := e.TakeResult()
		e.Release()
		return res, nil
	}
}

func run(rate float64, comps []*at.AggComponent, levelAcc []float64, queries []at.AggQuery, exactEst [][]float64) {
	handlers := make([]at.Handler, len(comps))
	for i := range handlers {
		handlers[i] = handler(comps[i])
	}
	cl, err := at.NewCluster(handlers, at.WaitAll, at.ClusterOptions{
		Deadline: deadline,
		QueueLen: 16,
	})
	if err != nil {
		log.Fatal(err)
	}
	ctrl, err := at.NewDegradationController(at.DegradationConfig{
		Levels:             len(levelAcc),
		LevelAccuracy:      levelAcc,
		InflightSaturation: 4 * len(comps),
	})
	if err != nil {
		log.Fatal(err)
	}
	fe, err := at.NewFrontend(cl, at.FrontendOptions{
		Replicas: 2,
		Router:   at.NewLeastLoaded(),
		Admission: []at.AdmissionPolicy{
			at.NewMaxInflight(4 * len(comps)),
			at.NewQueueWatermark(0.25, 0.85),
		},
		Controller: ctrl,
	})
	if err != nil {
		log.Fatal(err)
	}

	type classStats struct {
		lat   *stats.LatencyRecorder
		acc   stats.Summary
		level int
		count int
	}
	var mu sync.Mutex
	perClass := map[string]*classStats{}
	var wg sync.WaitGroup
	rng := stats.NewRNG(uint64(rate))
	stop := time.Now().Add(runFor)
	req := 0
	for time.Now().Before(stop) {
		slo := classOf(req)
		qi := req % len(queries)
		req++
		wg.Add(1)
		go func() {
			defer wg.Done()
			q := queries[qi]
			t0 := time.Now()
			res, err := fe.Call(context.Background(), q, slo)
			if err != nil {
				return // rejected; counted by frontend stats
			}
			d := float64(time.Since(t0)) / float64(time.Millisecond)
			// Compose: merge the per-shard partial results.
			merged := at.AggResult{}
			first := true
			for _, sub := range res.Sub {
				if sub.Err != nil || sub.Skipped {
					continue
				}
				part := sub.Value.(at.AggResult)
				if first {
					merged = part
					first = false
					continue
				}
				merged.Merge(part)
			}
			if first {
				return // nothing answered within the deadline
			}
			acc := at.AggAccuracy(merged.Estimates(q.Op), exactEst[qi])
			mu.Lock()
			cs := perClass[res.SLO.String()]
			if cs == nil {
				cs = &classStats{lat: stats.NewLatencyRecorder(256)}
				perClass[res.SLO.String()] = cs
			}
			cs.lat.Record(d)
			cs.acc.Add(acc)
			cs.level += res.Level
			cs.count++
			mu.Unlock()
		}()
		time.Sleep(time.Duration(rng.Exp(rate) * float64(time.Second)))
	}
	wg.Wait()
	st := fe.Stats()
	fmt.Printf("admitted %d  degraded %d  rejected %d  (smoothed load %.2f)\n",
		st.Admitted, st.Degraded, st.Rejected, ctrl.Load())
	mu.Lock()
	for _, name := range []string{"Exact", "Bounded{0.90}", "BestEffort"} {
		cs := perClass[name]
		if cs == nil {
			continue
		}
		fmt.Printf("%-14s calls %5d   p50 %6.1fms   p99 %6.1fms   accuracy %.3f   mean level %.1f\n",
			name, cs.count, cs.lat.Percentile(50), cs.lat.Percentile(99),
			cs.acc.Mean(), float64(cs.level)/float64(cs.count))
	}
	mu.Unlock()
	cl.Close()
}
