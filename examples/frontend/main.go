// Frontend: the accuracy-aware frontend end to end on real goroutines.
// An open-loop Poisson client drives a fan-out cluster through the
// admission → routing → degradation pipeline at a calm and at an
// overloaded arrival rate, with a mixed SLO-class population (20%
// Exact, 30% Bounded{0.90}, 50% BestEffort).
//
// Each component handler reads the frontend-selected ladder level from
// its context and serves a correspondingly coarser (cheaper) synopsis,
// so the feedback loop closes: rising load → EWMA load estimate →
// coarser levels → cheaper sub-operations → bounded queues and tail
// latency. Exact requests keep paying the full price; under pressure
// the queue watermark degrades what it may and sheds what it must.
//
// Run with: go run ./examples/frontend
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	at "accuracytrader"
	"accuracytrader/internal/stats"
)

const (
	components = 8
	deadline   = 60 * time.Millisecond
	runFor     = 2500 * time.Millisecond
	// Per-sub-operation service time by ladder level, coarse → fine.
	// The finest level saturates the cluster near 1000/8 = 125 req/s.
	coarsest = 1 * time.Millisecond
	finest   = 8 * time.Millisecond
)

var levelCost = []time.Duration{coarsest, 2 * time.Millisecond, 4 * time.Millisecond, finest}

// handler serves one sub-operation at the ladder level the frontend
// selected (finest when the request bypassed the frontend).
func handler(ctx context.Context, _ interface{}) (interface{}, error) {
	level := len(levelCost) - 1
	if lv, ok := at.LevelFrom(ctx); ok && lv >= 0 && lv < len(levelCost) {
		level = lv
	}
	select {
	case <-time.After(levelCost[level]):
		return level, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func classOf(r int) at.SLO {
	switch r % 10 {
	case 0, 1:
		return at.ExactSLO()
	case 2, 3, 4:
		return at.BoundedSLO(0.9)
	default:
		return at.BestEffortSLO()
	}
}

func main() {
	for _, rate := range []float64{40, 400} {
		fmt.Printf("=== offered %.0f req/s (finest scan %v => utilisation %.2f) ===\n",
			rate, finest, rate*finest.Seconds())
		run(rate)
		fmt.Println()
	}
}

func run(rate float64) {
	handlers := make([]at.Handler, components)
	for i := range handlers {
		handlers[i] = handler
	}
	// The short mailbox keeps the worst-case queueing delay at the
	// reject watermark well inside the deadline, so admitted requests
	// finish instead of timing out.
	cl, err := at.NewCluster(handlers, at.WaitAll, at.ClusterOptions{
		Deadline: deadline,
		QueueLen: 16,
	})
	if err != nil {
		log.Fatal(err)
	}
	ctrl, err := at.NewDegradationController(at.DegradationConfig{
		Levels:             len(levelCost),
		LevelAccuracy:      []float64{0.6, 0.8, 0.9, 0.97},
		InflightSaturation: 4 * components,
	})
	if err != nil {
		log.Fatal(err)
	}
	fe, err := at.NewFrontend(cl, at.FrontendOptions{
		Replicas: 2,
		Router:   at.NewLeastLoaded(),
		Admission: []at.AdmissionPolicy{
			at.NewMaxInflight(4 * components),
			at.NewQueueWatermark(0.25, 0.85),
		},
		Controller: ctrl,
	})
	if err != nil {
		log.Fatal(err)
	}

	type classStats struct {
		lat      *stats.LatencyRecorder
		levelSum int
		count    int
	}
	var mu sync.Mutex
	perClass := map[string]*classStats{}
	var wg sync.WaitGroup
	rng := stats.NewRNG(uint64(rate))
	stop := time.Now().Add(runFor)
	req := 0
	for time.Now().Before(stop) {
		slo := classOf(req)
		req++
		wg.Add(1)
		go func() {
			defer wg.Done()
			t0 := time.Now()
			res, err := fe.Call(context.Background(), nil, slo)
			if err != nil {
				return // rejected (or closed); counted by frontend stats
			}
			d := float64(time.Since(t0)) / float64(time.Millisecond)
			mu.Lock()
			cs := perClass[res.SLO.String()]
			if cs == nil {
				cs = &classStats{lat: stats.NewLatencyRecorder(256)}
				perClass[res.SLO.String()] = cs
			}
			cs.lat.Record(d)
			cs.levelSum += res.Level
			cs.count++
			mu.Unlock()
		}()
		time.Sleep(time.Duration(rng.Exp(rate) * float64(time.Second)))
	}
	wg.Wait()
	st := fe.Stats()
	fmt.Printf("admitted %d  degraded %d  rejected %d  (smoothed load %.2f)\n",
		st.Admitted, st.Degraded, st.Rejected, ctrl.Load())
	mu.Lock()
	for _, name := range []string{"Exact", "Bounded{0.90}", "BestEffort"} {
		cs := perClass[name]
		if cs == nil {
			continue
		}
		fmt.Printf("%-14s calls %5d   p50 %6.1fms   p99 %6.1fms   mean level %.1f of %d\n",
			name, cs.count, cs.lat.Percentile(50), cs.lat.Percentile(99),
			float64(cs.levelSum)/float64(cs.count), len(levelCost)-1)
	}
	mu.Unlock()
	cl.Close()
}
