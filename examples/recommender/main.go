// Recommender: the paper's first case study — a user-based collaborative
// filtering service — running on the live goroutine runtime with real
// wall-clock deadlines.
//
// The program builds a sharded rating dataset (MovieLens-like structure),
// creates each shard's synopsis and aggregated users, then serves
// recommendation requests two ways:
//
//   - exact: every component scans its whole shard;
//   - AccuracyTrader: every component runs Algorithm 1 under a deadline.
//
// It reports per-policy latency and the RMSE cost of approximation.
//
// Run with: go run ./examples/recommender
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	at "accuracytrader"
	"accuracytrader/internal/cf"
	"accuracytrader/internal/stats"
	"accuracytrader/internal/workload"
)

const (
	shards   = 6
	deadline = 20 * time.Millisecond
	requests = 60
)

func main() {
	rcfg := workload.DefaultRatingsConfig()
	rcfg.UsersPerSubset = 300
	rcfg.Seed = 42
	data := workload.GenerateRatings(rcfg, shards)

	fmt.Printf("building %d CF components (%d users each)...\n", shards, rcfg.UsersPerSubset)
	comps := make([]*cf.Component, shards)
	for s := range comps {
		comp, err := cf.BuildComponent(data.Subsets[s], at.SynopsisConfig{
			SVD:              at.SVDConfig{Dims: 3, Epochs: 25, Seed: 42},
			CompressionRatio: 8,
		})
		if err != nil {
			log.Fatal(err)
		}
		comps[s] = comp
	}

	exactHandlers := make([]at.Handler, shards)
	atHandlers := make([]at.Handler, shards)
	for s := range comps {
		comp := comps[s]
		exactHandlers[s] = func(ctx context.Context, payload interface{}) (interface{}, error) {
			return cf.ExactResult(comp, payload.(cf.Request)), nil
		}
		atHandlers[s] = func(ctx context.Context, payload interface{}) (interface{}, error) {
			// Engines come from the package pool; TakeResult detaches the
			// accumulators so they survive the engine's release.
			e := cf.GetEngine(comp, payload.(cf.Request))
			at.RunWithDeadline(e, deadline, 0)
			res := e.TakeResult()
			e.Release()
			return res, nil
		}
	}

	exactCl, err := at.NewCluster(exactHandlers, at.WaitAll, at.ClusterOptions{Deadline: 5 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	defer exactCl.Close()
	atCl, err := at.NewCluster(atHandlers, at.WaitAll, at.ClusterOptions{Deadline: 5 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	defer atCl.Close()

	reqs := data.SampleCFRequests(7, requests, 0.2)
	var exactLat, atLat stats.LatencyRecorder
	var exPreds, atPreds, truth []float64
	for _, spec := range reqs {
		req := cf.NewRequest(spec.Known, spec.Targets)

		t0 := time.Now()
		exRes, err := exactCl.Call(context.Background(), req)
		if err != nil {
			log.Fatal(err)
		}
		exactLat.Record(float64(time.Since(t0)) / float64(time.Millisecond))

		t1 := time.Now()
		atRes, err := atCl.Call(context.Background(), req)
		if err != nil {
			log.Fatal(err)
		}
		atLat.Record(float64(time.Since(t1)) / float64(time.Millisecond))

		exMerged := cf.NewResult(len(req.Targets))
		atMerged := cf.NewResult(len(req.Targets))
		for s := 0; s < shards; s++ {
			exMerged.Merge(exRes[s].Value.(cf.Result))
			atMerged.Merge(atRes[s].Value.(cf.Result))
		}
		exPreds = append(exPreds, exMerged.Predictions(req.ActiveMean())...)
		atPreds = append(atPreds, atMerged.Predictions(req.ActiveMean())...)
		truth = append(truth, spec.Truth...)
	}

	fmt.Printf("\n%d requests x %d components, deadline %v\n", len(reqs), shards, deadline)
	fmt.Printf("exact:          mean %.2fms  p99 %.2fms  RMSE %.4f\n",
		exactLat.Mean(), exactLat.Percentile(99), cf.RMSE(exPreds, truth))
	fmt.Printf("AccuracyTrader: mean %.2fms  p99 %.2fms  RMSE %.4f\n",
		atLat.Mean(), atLat.Percentile(99), cf.RMSE(atPreds, truth))
	fmt.Printf("(the approximate RMSE should sit within a few %% of exact)\n")
}
