// Websearch: the paper's second case study — a Lucene-style web search
// engine — on the live goroutine runtime, comparing the gather policies
// that correspond to the paper's techniques on one query stream:
//
//   - WaitAll (Basic): exact scan, wait for every component;
//   - PartialGather (Partial execution): exact scan, skip components that
//     miss the deadline — losing their top pages entirely;
//   - AccuracyTrader: Algorithm 1 under the same deadline — every
//     component answers, first from its synopsis, then refined with its
//     most query-similar page groups.
//
// It reports latency and top-10 overlap vs exact for each policy.
//
// Run with: go run ./examples/websearch
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	at "accuracytrader"
	"accuracytrader/internal/stats"
	"accuracytrader/internal/textindex"
	"accuracytrader/internal/workload"
)

const (
	shards   = 6
	deadline = 15 * time.Millisecond
	queries  = 80
	topK     = 10
)

// scanFor models the time an exact scan of the shard occupies its
// single-server component (sleeping, so the demo is stable on small
// machines; the worker is still serialized, which is what queueing needs).
func scanFor(d time.Duration) {
	time.Sleep(d)
}

func main() {
	ccfg := workload.DefaultCorpusConfig()
	ccfg.DocsPerSubset = 300
	ccfg.Seed = 42
	data := workload.GenerateCorpus(ccfg, shards)

	fmt.Printf("building %d search components (%d pages each)...\n", shards, ccfg.DocsPerSubset)
	comps := make([]*textindex.Component, shards)
	for s := range comps {
		comp, err := textindex.BuildComponent(data.Subsets[s], at.SynopsisConfig{
			SVD:              at.SVDConfig{Dims: 3, Epochs: 25, Seed: 42},
			CompressionRatio: 8,
		})
		if err != nil {
			log.Fatal(err)
		}
		comps[s] = comp
	}

	// Exact handlers burn simulated scan time (one straggler component is
	// 10x slower); AccuracyTrader handlers respect the deadline instead.
	exactHandlers := make([]at.Handler, shards)
	atHandlers := make([]at.Handler, shards)
	for s := range comps {
		comp := comps[s]
		scan := 4 * time.Millisecond
		if s == 0 {
			scan = 40 * time.Millisecond // straggler
		}
		exactHandlers[s] = func(ctx context.Context, payload interface{}) (interface{}, error) {
			scanFor(scan)
			return textindex.ExactTopK(comp, comp.Ix.ParseQuery(payload.(string)), topK), nil
		}
		synScan := scan / 20
		atHandlers[s] = func(ctx context.Context, payload interface{}) (interface{}, error) {
			scanFor(synScan)
			// Engines come from the package pool: the handler allocates no
			// per-request scoring state at steady state.
			e := textindex.GetEngine(comp, comp.Ix.ParseQuery(payload.(string)))
			at.RunWithDeadline(e, deadline-synScan, 0)
			hits := e.TopK(topK)
			e.Release()
			return hits, nil
		}
	}

	// Basic waits for everything (generous timeout); Partial gathers only
	// until the service deadline; AccuracyTrader's handlers bound
	// themselves, so WaitAll composes complete results quickly.
	basic := mustCluster(exactHandlers, at.WaitAll, 5*time.Second)
	defer basic.Close()
	partial := mustCluster(exactHandlers, at.PartialGather, deadline)
	defer partial.Close()
	trader := mustCluster(atHandlers, at.WaitAll, 5*time.Second)
	defer trader.Close()

	qs := data.SampleQueries(7, queries)
	var basicLat, partialLat, atLat stats.LatencyRecorder
	var partialOv, atOv stats.Summary
	for _, q := range qs {
		exact := gather(basic, q, &basicLat)
		got := gather(partial, q, &partialLat)
		partialOv.Add(textindex.TopKOverlap(exact, got))
		got = gather(trader, q, &atLat)
		atOv.Add(textindex.TopKOverlap(exact, got))
	}

	fmt.Printf("\n%d queries x %d components, deadline %v, component 0 is a 10x straggler\n",
		queries, shards, deadline)
	fmt.Printf("%-28s%12s%12s%14s\n", "policy", "mean ms", "p99 ms", "top-10 found")
	fmt.Printf("%-28s%12.2f%12.2f%14s\n", "Basic (WaitAll)", basicLat.Mean(), basicLat.Percentile(99), "100%")
	fmt.Printf("%-28s%12.2f%12.2f%13.1f%%\n", "Partial execution", partialLat.Mean(), partialLat.Percentile(99), 100*partialOv.Mean())
	fmt.Printf("%-28s%12.2f%12.2f%13.1f%%\n", "AccuracyTrader", atLat.Mean(), atLat.Percentile(99), 100*atOv.Mean())
}

func mustCluster(handlers []at.Handler, policy at.Policy, gatherDeadline time.Duration) *at.Cluster {
	cl, err := at.NewCluster(handlers, policy, at.ClusterOptions{Deadline: gatherDeadline})
	if err != nil {
		log.Fatal(err)
	}
	return cl
}

// gather calls the cluster and merges per-shard hits into a global
// top-10 with shard-unique page ids.
func gather(cl *at.Cluster, q string, lat *stats.LatencyRecorder) []textindex.Hit {
	t0 := time.Now()
	res, err := cl.Call(context.Background(), q)
	if err != nil {
		log.Fatal(err)
	}
	lat.Record(float64(time.Since(t0)) / float64(time.Millisecond))
	var parts [][]textindex.Hit
	for s, r := range res {
		if r.Skipped || r.Err != nil {
			continue
		}
		hits := r.Value.([]textindex.Hit)
		global := make([]textindex.Hit, len(hits))
		for i, h := range hits {
			global[i] = textindex.Hit{Doc: s*1_000_000 + h.Doc, Score: h.Score}
		}
		parts = append(parts, global)
	}
	return textindex.MergeTopK(parts, topK)
}
