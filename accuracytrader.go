// Package accuracytrader is a from-scratch Go reproduction of
// "AccuracyTrader: Accuracy-aware Approximate Processing for Low Tail
// Latency and High Result Accuracy in Cloud Online Services" (Han, Huang,
// Tang, Chang, Zhan — ICPP 2016, arXiv:1607.02734).
//
// AccuracyTrader targets highly parallel online services in which every
// request fans out over hundreds of components, each owning a subset of a
// large input dataset, so the component tail latency (p99.9) determines
// the service latency. The framework trades a small, controlled amount of
// result accuracy for large tail-latency reductions:
//
//   - Offline (BuildSynopsis, Synopsis.Update): each component's data
//     subset is reduced to a low-dimensional latent space with
//     incremental SVD, similar points are grouped with an R-tree, and
//     each group becomes one aggregated data point of a small synopsis
//     plus an index-file entry mapping it to its original members.
//     Updates are incremental: only groups whose membership changed are
//     re-aggregated.
//   - Online (Run, RunWithDeadline — Algorithm 1 of the paper): a
//     component first processes its synopsis, producing a fast initial
//     result and a correlation estimate per aggregated point, then
//     improves the result with the original member sets in descending
//     correlation order until the service deadline (l_spe) or the set
//     cap (imax).
//
// This package is the facade over the implementation packages:
//
//	internal/core      Algorithm 1 (generic over applications)
//	internal/synopsis  offline synopsis management
//	internal/svd       incremental (Funk/Gorrell) SVD
//	internal/rtree     R-tree with bulk load, level cuts, updates
//	internal/cf        user-based CF recommender application
//	internal/textindex Lucene-style search engine application
//	internal/agg       approximate aggregation analytics application
//	internal/service   live goroutine fan-out runtime (wall clock)
//	internal/frontend  accuracy-aware frontend: admission, replica
//	                   routing, load-adaptive synopsis degradation
//	internal/wire      binary protocol of the networked serving layer
//	internal/netsvc    networked serving: component servers, socket
//	                   aggregator, composed-reply front server
//	internal/cluster   discrete-event cluster simulator (virtual clock)
//	internal/experiments  regeneration of every paper table and figure
//
// See ARCHITECTURE.md for the dataflow and package-dependency map,
// examples/ for runnable end-to-end programs and EXPERIMENTS.md for
// the paper-vs-measured record.
package accuracytrader

import (
	"context"
	"io"
	"time"

	"accuracytrader/internal/agg"
	"accuracytrader/internal/audit"
	"accuracytrader/internal/cf"
	"accuracytrader/internal/core"
	"accuracytrader/internal/frontend"
	"accuracytrader/internal/ingest"
	"accuracytrader/internal/netsvc"
	"accuracytrader/internal/obs"
	"accuracytrader/internal/rescache"
	"accuracytrader/internal/service"
	"accuracytrader/internal/svd"
	"accuracytrader/internal/synopsis"
	"accuracytrader/internal/textindex"
	"accuracytrader/internal/wire"
)

// FeatureSource exposes a data subset as sparse numeric feature vectors —
// the input to synopsis creation (paper §2.2 step 1).
type FeatureSource = synopsis.FeatureSource

// FeatureCell is one (column, value) pair of a sparse feature vector.
type FeatureCell = svd.Cell

// SynopsisConfig controls offline synopsis creation.
type SynopsisConfig = synopsis.Config

// SVDConfig controls the step-1 dimensionality reduction.
type SVDConfig = svd.Config

// Synopsis is a component's synopsis plus index file (paper §2.2).
type Synopsis = synopsis.Synopsis

// Group is one index-file entry: the members of one aggregated point.
type Group = synopsis.Group

// Change describes an input-data change for incremental updating.
type Change = synopsis.Change

// Change kinds (paper §2.2: new data points and changed data points,
// plus deletion).
const (
	Add    = synopsis.Add
	Modify = synopsis.Modify
	Delete = synopsis.Delete
)

// UpdateStats reports what an incremental update touched.
type UpdateStats = synopsis.UpdateStats

// BuildSynopsis creates a synopsis for one component's data subset.
func BuildSynopsis(src FeatureSource, cfg SynopsisConfig) (*Synopsis, error) {
	return synopsis.Build(src, cfg)
}

// LoadSynopsis reads a synopsis written with Synopsis.Save.
func LoadSynopsis(r io.Reader) (*Synopsis, error) {
	return synopsis.Load(r)
}

// Engine is the application side of Algorithm 1: process the synopsis
// (returning per-aggregated-point correlations) and improve the result
// one member set at a time.
type Engine = core.Engine

// Continue decides whether Algorithm 1 may process another set.
type Continue = core.Continue

// Trace reports what a run processed.
type Trace = core.Trace

// Run executes Algorithm 1 with an arbitrary continuation condition.
func Run(e Engine, cont Continue, imax int) Trace {
	return core.Run(e, cont, imax)
}

// RunWithDeadline executes Algorithm 1 against a wall-clock deadline
// (l_spe in the paper; 100ms in its evaluation).
func RunWithDeadline(e Engine, deadline time.Duration, imax int) Trace {
	return core.RunWithDeadline(e, deadline, imax)
}

// BudgetContinue allows exactly k improvement steps.
func BudgetContinue(k int) Continue { return core.BudgetContinue(k) }

// Rank orders aggregated points by descending correlation.
func Rank(correlations []float64) []int { return core.Rank(correlations) }

// Handler processes one sub-operation in the live runtime.
type Handler = service.Handler

// Cluster is the live fan-out runtime: one worker goroutine per
// component, gather policies matching the paper's compared techniques.
type Cluster = service.Cluster

// ClusterOptions configures the live runtime.
type ClusterOptions = service.Options

// SubResult is one component's reply in the live runtime.
type SubResult = service.SubResult

// Policy selects the live runtime's gather behaviour.
type Policy = service.Policy

// Gather policies of the live runtime.
const (
	WaitAll       = service.WaitAll       // Basic: wait for every component
	PartialGather = service.PartialGather // Partial execution: skip late components
	Hedged        = service.Hedged        // Request reissue: hedge stragglers
)

// NewCluster starts a live cluster over the given per-subset handlers.
func NewCluster(handlers []Handler, policy Policy, opts ClusterOptions) (*Cluster, error) {
	return service.New(handlers, policy, opts)
}

// Frontend is the accuracy-aware frontend pipeline — admission →
// replica routing → load-adaptive synopsis degradation — in front of a
// live Cluster.
type Frontend = frontend.Frontend

// FrontendOptions configures a Frontend.
type FrontendOptions = frontend.Options

// FrontendResult is one answered frontend request.
type FrontendResult = frontend.Result

// SLO is a per-request accuracy/latency class.
type SLO = frontend.SLO

// ExactSLO requires the finest processing regardless of load.
func ExactSLO() SLO { return frontend.ExactSLO() }

// BoundedSLO accepts degradation down to an estimated accuracy floor.
func BoundedSLO(minAccuracy float64) SLO { return frontend.BoundedSLO(minAccuracy) }

// BestEffortSLO accepts whatever level the current load dictates.
func BestEffortSLO() SLO { return frontend.BestEffortSLO() }

// AdmissionPolicy decides whether an arriving request enters the
// fan-out.
type AdmissionPolicy = frontend.AdmissionPolicy

// NewTokenBucket rate-limits admissions.
func NewTokenBucket(ratePerSec, burst float64) AdmissionPolicy {
	return frontend.NewTokenBucket(ratePerSec, burst)
}

// NewMaxInflight caps concurrent admitted requests.
func NewMaxInflight(limit int) AdmissionPolicy { return frontend.NewMaxInflight(limit) }

// NewQueueWatermark degrades and sheds on mailbox occupancy.
func NewQueueWatermark(degradeAt, rejectAt float64) AdmissionPolicy {
	return frontend.NewQueueWatermark(degradeAt, rejectAt)
}

// Router places sub-operations on shard replicas.
type Router = frontend.Router

// NewRoundRobin cycles each subset through its replicas.
func NewRoundRobin() Router { return frontend.NewRoundRobin() }

// NewLeastLoaded routes to the replica with the shallowest queue.
func NewLeastLoaded() Router { return frontend.NewLeastLoaded() }

// NewPowerOfTwo routes to the less loaded of two random replicas.
func NewPowerOfTwo(seed uint64) Router { return frontend.NewPowerOfTwo(seed) }

// DegradationController maps observed load to ladder levels per SLO.
type DegradationController = frontend.Controller

// DegradationConfig parametrizes the controller.
type DegradationConfig = frontend.ControllerConfig

// NewDegradationController builds the load→ladder-level controller.
func NewDegradationController(cfg DegradationConfig) (*DegradationController, error) {
	return frontend.NewController(cfg)
}

// FrontendBackend is the fan-out runtime seam a Frontend drives: both
// the in-process Cluster and the networked NetAggregator satisfy it,
// so one policy set (admission, routing, degradation) governs every
// runtime.
type FrontendBackend = frontend.Backend

// NewFrontend wraps a fan-out backend — a live in-process Cluster or a
// networked NetAggregator — with the frontend pipeline.
func NewFrontend(b FrontendBackend, opts FrontendOptions) (*Frontend, error) {
	return frontend.New(b, opts)
}

// LevelFrom extracts the frontend-selected ladder level inside a
// Handler; ok is false when the request did not pass a Frontend.
func LevelFrom(ctx context.Context) (level int, ok bool) { return frontend.LevelFrom(ctx) }

// The approximate aggregation application (internal/agg): BlinkDB-style
// bounded-error SUM/COUNT/AVG-per-group queries over stratified samples
// — the third workload, whose synopsis is a multi-resolution ladder of
// per-stratum samples and whose accuracy metric is 1 − mean relative
// error against the exact answer.

// FactTable is a columnar fact-table shard: (group key, value) rows.
type FactTable = agg.Table

// NewFactTable returns an empty fact table over numKeys group keys.
func NewFactTable(numKeys int) *FactTable { return agg.NewTable(numKeys) }

// AggConfig controls the stratified-sample synopsis ladder.
type AggConfig = agg.Config

// AggComponent is one parallel service component of the aggregation
// application: a fact-table shard plus its synopsis ladder.
type AggComponent = agg.Component

// BuildAggComponent builds a shard's stratified-sample synopsis ladder
// (the aggregation application's offline module).
func BuildAggComponent(t *FactTable, cfg AggConfig) (*AggComponent, error) {
	return agg.BuildComponent(t, cfg)
}

// AggQuery is one aggregation request: Op(value) GROUP BY key over the
// rows whose value lies in [Lo, Hi).
type AggQuery = agg.Query

// AggOp selects an AggQuery's aggregate.
type AggOp = agg.Op

// The supported aggregates.
const (
	AggSum   = agg.Sum
	AggCount = agg.Count
	AggAvg   = agg.Avg
)

// AggResult is a component's partial aggregation answer: per-key
// estimates with CLT variances; partial results merge by addition.
type AggResult = agg.Result

// GetAggEngine returns a pooled aggregation engine (an Engine for
// Algorithm 1) reset for the query at a ladder level; release it with
// its Release method when the request is finished.
func GetAggEngine(c *AggComponent, q AggQuery, level int) *agg.Engine {
	return agg.GetEngine(c, q, level)
}

// ExactAggResult is the component's exact answer — the full-computation
// baseline the accuracy metric compares against.
func ExactAggResult(c *AggComponent, q AggQuery) AggResult { return agg.ExactResult(c, q) }

// AggAccuracy is the aggregation accuracy metric: 1 − mean relative
// error of the approximate per-key estimates against the exact ones.
func AggAccuracy(approx, exact []float64) float64 { return agg.Accuracy(approx, exact) }

// MeasureAggLevelAccuracy calibrates one ladder level against exact
// answers over a query sample — the measured per-level accuracy that
// feeds DegradationConfig.LevelAccuracy, connecting Bounded SLO floors
// to this workload's real error.
func MeasureAggLevelAccuracy(comps []*AggComponent, queries []AggQuery, level int) float64 {
	return agg.MeasureLevelAccuracy(comps, queries, level)
}

// SLOFrom extracts the request's effective SLO inside a Handler, so
// handlers can bypass their synopsis for Exact-class requests; ok is
// false when the request did not pass a Frontend.
func SLOFrom(ctx context.Context) (slo SLO, ok bool) { return frontend.SLOFrom(ctx) }

// ComponentFrom returns the index of the component executing the
// current sub-operation inside a live-cluster Handler — under hedging
// the replica runs on a different component than the primary, so
// handlers modeling per-machine effects can key on the executor.
func ComponentFrom(ctx context.Context) (comp int, ok bool) { return service.ComponentFrom(ctx) }

// The networked serving layer (internal/wire + internal/netsvc): the
// paper's deployment model — an aggregator fanning each request out to
// many component sub-services — over real TCP sockets, with the SLO
// class, ladder level and absolute deadline propagated on every hop.

// WireRequest is one sub-operation (or, with Subset < 0, one
// whole-service request) on the wire.
type WireRequest = wire.Request

// WireSubReply is one component server's reply.
type WireSubReply = wire.SubReply

// WireCFRequest, WireSearchRequest and WireAggRequest are the
// per-workload request payloads.
type (
	WireCFRequest     = wire.CFRequest
	WireSearchRequest = wire.SearchRequest
	WireAggRequest    = wire.AggRequest
)

// WireReply is the composed whole-service reply.
type WireReply = wire.Reply

// The wire payload kinds, one per application workload.
const (
	WireKindCF     = wire.KindCF
	WireKindSearch = wire.KindSearch
	WireKindAgg    = wire.KindAgg
)

// NetHandler serves one sub-operation on a component server.
type NetHandler = netsvc.Handler

// NetServerOptions configures component and front servers.
type NetServerOptions = netsvc.ServerOptions

// NetComponentServer is a shard-holding process's listener: bounded
// accept/worker pool, deadline enforcement from the propagated budget.
type NetComponentServer = netsvc.Server

// NewNetComponentServer returns a component server around a handler.
func NewNetComponentServer(h NetHandler, opts NetServerOptions) *NetComponentServer {
	return netsvc.NewServer(h, opts)
}

// NetBackendOptions configures the per-workload component handlers
// (modeled scan cost, interference hook, improvement cap).
type NetBackendOptions = netsvc.BackendOptions

// NewNetCFBackend serves the CF recommender workload over comps.
func NewNetCFBackend(comps []*cf.Component, opts NetBackendOptions) NetHandler {
	return netsvc.NewCFBackend(comps, opts)
}

// NewNetSearchBackend serves the web-search workload over comps.
func NewNetSearchBackend(comps []*textindex.Component, opts NetBackendOptions) NetHandler {
	return netsvc.NewSearchBackend(comps, opts)
}

// NewNetAggBackend serves the aggregation workload over comps.
func NewNetAggBackend(comps []*AggComponent, opts NetBackendOptions) NetHandler {
	return netsvc.NewAggBackend(comps, opts)
}

// NetAggregator is the scatter/gather client over component servers:
// pooled reconnecting connections, the same WaitAll / PartialGather /
// Hedged gather policies as the in-process runtime, and a
// FrontendBackend implementation so NewFrontend drives it unchanged.
type NetAggregator = netsvc.Aggregator

// NetAggregatorOptions configures a NetAggregator.
type NetAggregatorOptions = netsvc.AggregatorOptions

// NewNetAggregator returns an aggregator over one address per
// component.
func NewNetAggregator(addrs []string, opts NetAggregatorOptions) (*NetAggregator, error) {
	return netsvc.NewAggregator(addrs, opts)
}

// NetFrontServer answers whole-service requests with composed replies,
// optionally through the accuracy-aware frontend pipeline.
type NetFrontServer = netsvc.FrontServer

// NewNetFrontServer wraps an aggregator (and optional frontend).
func NewNetFrontServer(agr *NetAggregator, fe *Frontend, opts NetServerOptions) *NetFrontServer {
	return netsvc.NewFrontServer(agr, fe, opts)
}

// NetClient talks to a NetFrontServer over one multiplexed connection.
type NetClient = netsvc.Client

// NetClientOptions configures a NetClient.
type NetClientOptions = netsvc.ClientOptions

// DialNetClient connects to a NetFrontServer.
func DialNetClient(addr string, opts NetClientOptions) (*NetClient, error) {
	return netsvc.DialClient(addr, opts)
}

// NetAggResultOf views a composed wire aggregation result as an
// AggResult, so Estimate/Bound work on network replies.
func NetAggResultOf(r *wire.AggResult) AggResult { return netsvc.AggResultOf(r) }

// The accuracy-aware result cache (internal/rescache): a sharded,
// bounded, accuracy-tagged response cache shared by both serving
// runtimes. Entries carry the accuracy bound they were computed at and
// a data-version epoch; a hit is served only when the recorded
// accuracy clears the request's floor and the epoch is current.
// Concurrent identical misses coalesce onto one computation, and a
// low-priority worker refreshes popular coarse entries to exact.

// ResultCache is the accuracy-aware response cache.
type ResultCache = rescache.Cache

// ResultCacheConfig configures a ResultCache.
type ResultCacheConfig = rescache.Config

// ResultCacheStats are the cache's cumulative counters.
type ResultCacheStats = rescache.Stats

// NewResultCache returns an empty cache. Wire it into a frontend via
// FrontendOptions.Cache/CacheKey/CacheRefresh (both runtimes), or into
// a NetFrontServer via its EnableCache method (canonical wire keys).
// Bump its epoch after synopsis updates to invalidate lazily.
func NewResultCache(cfg ResultCacheConfig) (*ResultCache, error) { return rescache.New(cfg) }

// WireCacheKey derives the canonical cache key of a wire request:
// the hash of its canonical payload encoding (order-insensitive fields
// sorted, per-request metadata excluded) — semantically identical
// requests key identically.
func WireCacheKey(req *WireRequest) uint64 {
	return rescache.Key(wire.AppendCanonicalKey(nil, req))
}

// CanonicalizeWireRequest returns a copy of req with order-insensitive
// payload fields in canonical order (and CF targets sorted/deduped, so
// apply it before sending — replies are positional).
func CanonicalizeWireRequest(req *WireRequest) *WireRequest { return wire.Canonicalize(req) }

// The observability plane (internal/obs): a unified metrics registry,
// per-request decision traces that stitch across the wire, and the
// admin HTTP plane serving both. Tracing is strictly opt-in — a nil
// recorder (or an untraced request) makes every recording call a
// zero-allocation no-op, so the serving path pays nothing when
// observability is off.

// MetricsRegistry is the unified metrics registry: sharded counters,
// gauges and fixed-bucket histograms with Prometheus-text exposition.
// Wire it into a frontend via FrontendOptions.Metrics and serve it via
// NewAdminPlane.
type MetricsRegistry = obs.Registry

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// TraceRecorder holds the most recent n request traces in a
// preallocated ring. Pass it as NetServerOptions.Tracer to trace a
// NetFrontServer's requests end to end.
type TraceRecorder = obs.Recorder

// NewTraceRecorder returns a recorder keeping the last n traces, each
// capped at maxSpans spans.
func NewTraceRecorder(n, maxSpans int) *TraceRecorder { return obs.NewRecorder(n, maxSpans) }

// RequestTrace is one request's decision trace. All methods are
// nil-receiver safe: code records unconditionally and pays nothing
// when the request is untraced.
type RequestTrace = obs.Trace

// TraceView is an immutable snapshot of one recorded trace.
type TraceView = obs.TraceView

// RequestTraceFrom returns the trace recording the current request, or
// nil (safe to use) when the request is untraced.
func RequestTraceFrom(ctx context.Context) *RequestTrace { return obs.TraceFrom(ctx) }

// TraceSummary aggregates recorded traces into a per-SLO-class
// deadline-budget breakdown table (its Render method).
type TraceSummary = obs.Summary

// SummarizeTraces builds the per-SLO-class breakdown over a recorder
// snapshot.
func SummarizeTraces(views []TraceView) *TraceSummary { return obs.Summarize(views) }

// AdminPlane is the operational HTTP endpoint set: /metrics (the
// registry in Prometheus text), /traces (recent decision traces as
// JSON), /healthz (readiness, flipped during graceful shutdown) and
// /debug/pprof.
type AdminPlane = obs.Admin

// NewAdminPlane serves reg and rec (either may be nil); call its
// Listen method with a loopback address, Close when done.
func NewAdminPlane(reg *MetricsRegistry, rec *TraceRecorder) *AdminPlane {
	return obs.NewAdmin(reg, rec)
}

// Live synopsis updates (internal/ingest): components accept appended
// rows while serving. A live store layers an append-only,
// exactly-scanned delta segment over a frozen synopsis base behind an
// epoch-swapped snapshot — readers stay lock- and allocation-free, the
// delta fold can only tighten estimates, and a compacted store is
// bit-identical to an offline rebuild over the same rows. A merge
// worker publishes staged rows each interval and periodically
// compacts; appends travel the wire as protocol-v5 batches
// (NetClient.Ingest), and NetFrontServer.EnableIngest bumps the
// result-cache epoch and re-warms hot entries on every swap.

// AggLiveStore is the aggregation workload's live synopsis store.
type AggLiveStore = ingest.AggLive

// NewAggLiveStore returns an empty live store over a numKeys-group
// domain; seed it with Append + Compact before serving.
func NewAggLiveStore(numKeys int, cfg AggConfig) *AggLiveStore {
	return ingest.NewAggLive(numKeys, cfg)
}

// IngestWorker drives one live store's publish/compact cycle in the
// background; Close drains with a final publish.
type IngestWorker = ingest.Worker

// IngestWorkerOptions configures an IngestWorker.
type IngestWorkerOptions = ingest.WorkerOptions

// NewIngestWorker starts a worker over any live store.
func NewIngestWorker(s ingest.Store, opts IngestWorkerOptions) *IngestWorker {
	return ingest.NewWorker(s, opts)
}

// WireIngestRequest is a protocol-v5 append batch: atomic (all rows or
// none), routed to one home shard, acknowledged with its staging
// epoch.
type WireIngestRequest = wire.IngestRequest

// WireIngestReply acknowledges an append batch; the rows are visible
// to queries at any epoch strictly greater than Epoch.
type WireIngestReply = wire.IngestReply

// NetLiveStores bundles the live stores a component server ingests
// into, one slice entry per locally-served shard.
type NetLiveStores = netsvc.LiveStores

// NewNetLiveAggBackend answers aggregation queries from live-store
// snapshots — the live-data twin of NewNetAggBackend. Pair it with
// NetComponentServer.SetIngest(NewNetLiveIngestHandler(...)) to accept
// appends on the same connections.
func NewNetLiveAggBackend(lives []*AggLiveStore, opts NetBackendOptions) NetHandler {
	return netsvc.NewLiveAggBackend(lives, opts)
}

// NewNetLiveIngestHandler stages protocol-v5 append batches into the
// bundled live stores.
func NewNetLiveIngestHandler(stores NetLiveStores) netsvc.IngestHandler {
	return netsvc.NewLiveIngestHandler(stores)
}

// The accuracy audit plane (internal/audit + internal/obs): the system
// claims an accuracy on every approximate answer; the audit plane
// checks that claim against ground truth. A background auditor replays
// a deterministic hash-sample of answered requests at the Exact level
// off the hot path (gated on controller load, like the cache refresh
// worker), compares realized error against the claimed accuracy and
// CLT bounds, and maintains per-workload/per-level calibration tables.
// Alongside it, an SLO tracker accumulates deadline-miss, degradation
// and accuracy-floor burn rates over sliding 1m/10m/1h windows, and
// the trace recorder pins anomalous traces into an exemplar store so
// the interesting tails survive ring rotation.

// SLOBudgets are the per-signal error budgets burn rates are measured
// against (deadline misses, accuracy-floor violations, degraded
// replies).
type SLOBudgets = obs.SLOBudgets

// DefaultSLOBudgets returns the stock budgets: 0.1% deadline misses,
// 0.1% floor violations, 5% degraded replies.
func DefaultSLOBudgets() SLOBudgets { return obs.DefaultSLOBudgets() }

// SLOTracker accumulates per-class (and per-tenant) SLO attainment
// over sliding 1m/10m/1h windows. Wire it into a NetFrontServer via
// EnableSLO and serve it via AdminPlane.SetSLOTracker (/slo).
type SLOTracker = obs.SLOTracker

// NewSLOTracker returns an empty tracker with the given budgets.
func NewSLOTracker(budgets SLOBudgets) *SLOTracker { return obs.NewSLOTracker(budgets) }

// Auditor is the background ground-truth auditor. Obtain one from
// NetFrontServer.EnableAudit; Close it before shutting the server
// down.
type Auditor = audit.Auditor

// AuditConfig configures EnableAudit. The zero value is serviceable:
// 5% deterministic trace-ID sampling, a 256-slot queue and a paced
// single worker.
type AuditConfig = audit.Config

// AuditStats are the auditor's cumulative counters
// (sampled = audited + skipped-stale + replay-errors + dropped).
type AuditStats = audit.Stats

// AuditTableView is one workload/level calibration row: samples,
// mean claimed vs mean realized accuracy, bound coverage, floor
// violations.
type AuditTableView = audit.TableView

// AuditReport bundles an auditor's stats and calibration tables —
// the document AdminPlane.SetAuditSource serves at /audit.
type AuditReport = audit.Report
