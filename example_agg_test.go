package accuracytrader_test

import (
	"fmt"

	at "accuracytrader"
)

// factTable builds a small skewed fact table: a hot group key with
// mixed values, a mid-sized key, and a rare key — the shape stratified
// sampling is designed for.
func factTable() *at.FactTable {
	t := at.NewFactTable(3)
	for i := 0; i < 60; i++ {
		v := 2.0
		if i%2 == 0 {
			v = 10.0
		}
		t.Append(0, v) // hot key, bimodal values
	}
	for i := 0; i < 20; i++ {
		t.Append(1, 5.0)
	}
	for i := 0; i < 4; i++ {
		t.Append(2, 7.0) // rare key: fully covered by the sample floor
	}
	return t
}

// ExampleBuildAggComponent builds the aggregation application's offline
// synopsis: one stratum per group key and a ladder of nested stratified
// samples, coarse to fine.
func ExampleBuildAggComponent() {
	comp, err := at.BuildAggComponent(factTable(), at.AggConfig{
		Rates:     []float64{0.1, 0.5},
		MinSample: 4,
		Seed:      7,
	})
	if err != nil {
		panic(err)
	}
	syn := comp.Syn
	fmt.Println("rows:", comp.T.NumRows())
	fmt.Println("strata:", syn.NumStrata())
	fmt.Println("ladder levels:", syn.Levels())
	for l := 0; l < syn.Levels(); l++ {
		fmt.Printf("level %d: rate %.1f, sampled rows %d\n", l, syn.Rates()[l], syn.SampleUnits(l))
	}
	// Output:
	// rows: 84
	// strata: 3
	// ladder levels: 2
	// level 0: rate 0.1, sampled rows 14
	// level 1: rate 0.5, sampled rows 44
}

// ExampleGetAggEngine answers SUM(value) GROUP BY key for values in
// [5, 100) through Algorithm 1: the synopsis gives a fast estimate with
// a CLT error bound per group; improving with every ranked stratum
// reaches the exact answer and collapses the bounds to zero.
func ExampleGetAggEngine() {
	comp, err := at.BuildAggComponent(factTable(), at.AggConfig{
		Rates:     []float64{0.1, 0.5},
		MinSample: 4,
		Seed:      7,
	})
	if err != nil {
		panic(err)
	}
	q := at.AggQuery{Op: at.AggSum, Lo: 5, Hi: 100}
	e := at.GetAggEngine(comp, q, 0) // coarsest ladder level
	defer e.Release()

	corr := e.ProcessSynopsis() // Algorithm 1 line 1
	res := e.Result()
	exact := at.ExactAggResult(comp, q)
	fmt.Printf("synopsis estimate key 0: %.0f +- %.0f (exact %.0f)\n",
		res.Estimate(at.AggSum, 0), res.Bound(at.AggSum, 0), exact.Estimate(at.AggSum, 0))
	fmt.Printf("accuracy: %.3f\n", at.AggAccuracy(res.Estimates(at.AggSum), exact.Estimates(at.AggSum)))

	// Improve with every stratum, most uncertain first (lines 2-8).
	for _, g := range at.Rank(corr) {
		e.ProcessSet(g)
	}
	fmt.Printf("after improvement key 0: %.0f +- %.0f\n",
		res.Estimate(at.AggSum, 0), res.Bound(at.AggSum, 0))
	fmt.Printf("accuracy: %.3f\n", at.AggAccuracy(res.Estimates(at.AggSum), exact.Estimates(at.AggSum)))
	// Output:
	// synopsis estimate key 0: 200 +- 235 (exact 300)
	// accuracy: 0.889
	// after improvement key 0: 300 +- 0
	// accuracy: 1.000
}
