module accuracytrader

go 1.22
