// Command mdcheck is the repository's markdown link and anchor checker,
// run by CI's docs job. It scans the given markdown files for inline
// links and images and reports:
//
//   - relative file targets that do not exist;
//   - anchor fragments (#section, file.md#section) that match no
//     heading in the target file, using GitHub's slug rules.
//
// External links (http/https/mailto) are not fetched. Exit status is 1
// if any problem is found.
//
// Usage: mdcheck FILE.md [FILE.md ...]
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"unicode"
)

// linkRe matches inline markdown links/images: [text](target). Nested
// brackets and titles are out of scope for this repository's docs.
var linkRe = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// codeFenceRe matches fenced code block delimiters, capturing the
// marker so a block opened with ``` is only closed by ``` (a ~~~ line
// inside it is content, and vice versa).
var codeFenceRe = regexp.MustCompile("^\\s*(```|~~~)")

// fenceStep updates the open-fence marker for one line: it returns the
// new marker ("" = outside any fence) and whether the line itself is a
// fence delimiter.
func fenceStep(open, line string) (string, bool) {
	m := codeFenceRe.FindStringSubmatch(line)
	if m == nil {
		return open, false
	}
	switch open {
	case "":
		return m[1], true // opening fence
	case m[1]:
		return "", true // matching closer
	default:
		return open, false // other marker inside an open fence: content
	}
}

// headingRe matches ATX headings.
var headingRe = regexp.MustCompile(`^#{1,6}\s+(.*)$`)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: mdcheck FILE.md [FILE.md ...]")
		os.Exit(2)
	}
	problems := 0
	for _, file := range os.Args[1:] {
		problems += checkFile(file)
	}
	if problems > 0 {
		fmt.Fprintf(os.Stderr, "mdcheck: %d problem(s)\n", problems)
		os.Exit(1)
	}
}

func checkFile(file string) int {
	data, err := os.ReadFile(file)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", file, err)
		return 1
	}
	problems := 0
	fence := ""
	for i, line := range strings.Split(string(data), "\n") {
		var delim bool
		if fence, delim = fenceStep(fence, line); delim || fence != "" {
			continue
		}
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			if msg := checkTarget(file, m[1]); msg != "" {
				fmt.Fprintf(os.Stderr, "%s:%d: %s\n", file, i+1, msg)
				problems++
			}
		}
	}
	return problems
}

// checkTarget validates one link target relative to the file holding it.
func checkTarget(file, target string) string {
	if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
		return "" // external; not fetched
	}
	path, frag, _ := strings.Cut(target, "#")
	resolved := file
	if path != "" {
		resolved = filepath.Join(filepath.Dir(file), path)
		if _, err := os.Stat(resolved); err != nil {
			return fmt.Sprintf("broken link %q: %s does not exist", target, resolved)
		}
	}
	if frag == "" {
		return ""
	}
	if !strings.HasSuffix(strings.ToLower(resolved), ".md") {
		return "" // anchors into non-markdown files are not checked
	}
	slugs, err := headingSlugs(resolved)
	if err != nil {
		return fmt.Sprintf("broken anchor %q: %v", target, err)
	}
	if !slugs[frag] {
		return fmt.Sprintf("broken anchor %q: no heading slug %q in %s", target, frag, resolved)
	}
	return ""
}

// headingSlugs collects the GitHub-style slugs of a markdown file's
// headings (duplicates get -1, -2, ... suffixes).
func headingSlugs(file string) (map[string]bool, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	slugs := map[string]bool{}
	counts := map[string]int{}
	fence := ""
	for _, line := range strings.Split(string(data), "\n") {
		var delim bool
		if fence, delim = fenceStep(fence, line); delim || fence != "" {
			continue
		}
		m := headingRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		s := slugify(m[1])
		if n := counts[s]; n > 0 {
			slugs[fmt.Sprintf("%s-%d", s, n)] = true
		} else {
			slugs[s] = true
		}
		counts[s]++
	}
	return slugs, nil
}

// inlineMarkupRe strips emphasis/code markers before slugification.
// Underscores are NOT stripped: GitHub keeps literal underscores in
// heading slugs (at the cost of mis-slugging the rare _emphasized_
// heading word, which this repository's docs do not use).
var inlineMarkupRe = regexp.MustCompile("[`*]")

// slugify applies GitHub's anchor rules: lowercase, strip punctuation,
// spaces to hyphens.
func slugify(heading string) string {
	// Drop trailing link targets in headings like "## [name](url)".
	heading = linkRe.ReplaceAllStringFunc(heading, func(s string) string {
		open := strings.Index(s, "[")
		close := strings.Index(s, "]")
		return s[open+1 : close]
	})
	heading = inlineMarkupRe.ReplaceAllString(heading, "")
	heading = strings.ToLower(strings.TrimSpace(heading))
	var b strings.Builder
	for _, r := range heading {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '_' ||
			r > 127 && (unicode.IsLetter(r) || unicode.IsDigit(r)):
			b.WriteRune(r)
		case r == ' ' || r == '-':
			b.WriteRune('-')
		}
	}
	return b.String()
}
