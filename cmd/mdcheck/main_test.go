package main

import "testing"

func TestSlugify(t *testing.T) {
	cases := map[string]string{
		"Quickstart":                        "quickstart",
		"The accuracy-aware frontend":       "the-accuracy-aware-frontend",
		"`overload` — frontend sweep (ext)": "overload--frontend-sweep-ext",
		"Package map":                       "package-map",
		"EXPERIMENTS — paper vs. repro":     "experiments--paper-vs-repro",
		"fact_table layout":                 "fact_table-layout",
	}
	for in, want := range cases {
		if got := slugify(in); got != want {
			t.Errorf("slugify(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCheckTargetExternalSkipped(t *testing.T) {
	if msg := checkTarget("README.md", "https://example.com/x#y"); msg != "" {
		t.Fatalf("external link flagged: %s", msg)
	}
}

// TestFenceStepMarkerMatching checks a fence is only closed by its own
// marker: a ``` line inside a ~~~ block is content, not a toggle.
func TestFenceStepMarkerMatching(t *testing.T) {
	fence, delim := fenceStep("", "~~~markdown")
	if fence != "~~~" || !delim {
		t.Fatalf("open: fence=%q delim=%v", fence, delim)
	}
	if fence, delim = fenceStep(fence, "```go"); fence != "~~~" || delim {
		t.Fatalf("inner marker toggled fence: fence=%q delim=%v", fence, delim)
	}
	if fence, delim = fenceStep(fence, "some [link](missing.md) text"); fence != "~~~" || delim {
		t.Fatalf("content changed fence state: fence=%q delim=%v", fence, delim)
	}
	if fence, delim = fenceStep(fence, "~~~"); fence != "" || !delim {
		t.Fatalf("matching closer did not close: fence=%q delim=%v", fence, delim)
	}
}
