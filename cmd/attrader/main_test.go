package main

import (
	"strings"
	"testing"

	"accuracytrader/internal/experiments"
)

// TestRunnersCoverRegistry asserts the dispatch map and the experiment
// registry agree exactly — the other half of the anti-drift check
// (registry_test.go covers EXPERIMENTS.md).
func TestRunnersCoverRegistry(t *testing.T) {
	names := experiments.Names()
	for _, name := range names {
		if _, ok := runners[name]; !ok {
			t.Errorf("registered experiment %q has no runner", name)
		}
	}
	reg := map[string]bool{}
	for _, name := range names {
		reg[name] = true
	}
	for name := range runners {
		if !reg[name] {
			t.Errorf("runner %q is not in the experiment registry", name)
		}
	}
}

// TestAliasesResolveToRunners guards the `all` dedup path.
func TestAliasesResolveToRunners(t *testing.T) {
	for _, name := range experiments.Names() {
		if _, ok := runners[aliasOf(name)]; !ok {
			t.Errorf("alias target %q of %q has no runner", aliasOf(name), name)
		}
	}
}

// TestUnknownExperimentPrintsCatalogue pins the misuse behaviour: an
// unknown -exp name prints the registry-generated catalogue and
// returns an error (so main exits non-zero) — a typo in a script fails
// loudly instead of silently doing nothing.
func TestUnknownExperimentPrintsCatalogue(t *testing.T) {
	var out strings.Builder
	err := run(&out, "no-such-experiment", experiments.QuickScale(), 1, 1)
	if err == nil {
		t.Fatal("unknown experiment must return an error")
	}
	if !strings.Contains(err.Error(), "no-such-experiment") {
		t.Fatalf("error does not name the bad experiment: %v", err)
	}
	for _, name := range experiments.Names() {
		if !strings.Contains(out.String(), name) {
			t.Fatalf("catalogue output missing %q:\n%s", name, out.String())
		}
	}
}

// TestListPrintsCatalogue keeps -exp list on the same single source.
func TestListPrintsCatalogue(t *testing.T) {
	var out strings.Builder
	if err := run(&out, "list", experiments.QuickScale(), 1, 1); err != nil {
		t.Fatal(err)
	}
	for _, e := range experiments.Registry() {
		if !strings.Contains(out.String(), e.Name) || !strings.Contains(out.String(), e.About) {
			t.Fatalf("list output missing %q", e.Name)
		}
	}
}

// TestServeRejectsBadConfig covers the -serve argument validation.
func TestServeRejectsBadConfig(t *testing.T) {
	sc := experiments.QuickScale()
	if err := runServe("bogus", "agg", "", "", "", "", 1, sc); err == nil {
		t.Fatal("unknown role must error")
	}
	if err := runServe("component", "agg", "", "", "", "", 1, sc); err == nil {
		t.Fatal("component without -listen must error")
	}
	if err := runServe("aggregator", "agg", "", "", "", "", 1, sc); err == nil {
		t.Fatal("aggregator without -peers must error")
	}
	if err := runServe("client", "agg", "", "", "", "", 1, sc); err == nil {
		t.Fatal("client without -peers must error")
	}
	if err := runServe("client", "agg", "", "a:1,b:2", "", "", 1, sc); err == nil {
		t.Fatal("client with multiple peers must error")
	}
	if err := runServe("component", "nope", "127.0.0.1:0", "", "", "", 1, sc); err == nil {
		t.Fatal("unknown workload must error")
	}
}
