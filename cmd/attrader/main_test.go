package main

import (
	"testing"

	"accuracytrader/internal/experiments"
)

// TestRunnersCoverRegistry asserts the dispatch map and the experiment
// registry agree exactly — the other half of the anti-drift check
// (registry_test.go covers EXPERIMENTS.md).
func TestRunnersCoverRegistry(t *testing.T) {
	names := experiments.Names()
	for _, name := range names {
		if _, ok := runners[name]; !ok {
			t.Errorf("registered experiment %q has no runner", name)
		}
	}
	reg := map[string]bool{}
	for _, name := range names {
		reg[name] = true
	}
	for name := range runners {
		if !reg[name] {
			t.Errorf("runner %q is not in the experiment registry", name)
		}
	}
}

// TestAliasesResolveToRunners guards the `all` dedup path.
func TestAliasesResolveToRunners(t *testing.T) {
	for _, name := range experiments.Names() {
		if _, ok := runners[aliasOf(name)]; !ok {
			t.Errorf("alias target %q of %q has no runner", aliasOf(name), name)
		}
	}
}
