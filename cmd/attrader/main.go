// Command attrader regenerates the tables and figures of the
// AccuracyTrader paper (ICPP 2016) from the Go reproduction, plus the
// repository's extension experiments.
//
// Usage:
//
//	attrader -exp list                 # show available experiments
//	attrader -exp <name>               # run one experiment
//	attrader -exp all                  # everything in catalogue order
//
// The experiment catalogue is generated from a single registry
// (internal/experiments.Registry), which `-exp list` prints and
// EXPERIMENTS.md documents; a test asserts the three cannot drift.
//
// Scale flags shrink or grow the reproduction; defaults regenerate all
// shapes in a few minutes on a laptop.
//
// The networked serving layer deploys as separate processes:
//
//	attrader -serve component -workload agg -listen 127.0.0.1:7101
//	attrader -serve aggregator -workload agg -peers 127.0.0.1:7101,127.0.0.1:7102
//
// Component processes build their workload's shards deterministically
// from the scale flags (every process started with the same flags
// serves the same data) and answer sub-operations until interrupted.
// The aggregator process connects to its peers, verifies one
// round-trip, then either drives an open-loop measurement session and
// exits (the default), or — with -listen — serves composed replies to
// wire-protocol clients until interrupted.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"accuracytrader/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "list", "experiment to run (list|all|"+strings.Join(experiments.Names(), "|")+")")
		quick    = flag.Bool("quick", false, "use the reduced test-size scale")
		comps    = flag.Int("components", 0, "override simulated component count")
		shards   = flag.Int("shards", 0, "override real data shard count")
		session  = flag.Float64("session", 0, "override session seconds per arrival rate")
		samples  = flag.Int("samples", 0, "override accuracy samples per run")
		seed     = flag.Uint64("seed", 0, "override random seed")
		repeats  = flag.Int("repeats", 3, "fig3 repeats per scenario")
		requests = flag.Int("requests", 200, "fig4 requests per service")

		serve    = flag.String("serve", "", "network role: component|aggregator|client (empty = run -exp)")
		workload = flag.String("workload", "agg", "workload served by -serve: agg|cf|search")
		listen   = flag.String("listen", "", "listen address (component server, or aggregator front server)")
		peers    = flag.String("peers", "", "comma-separated component addresses (aggregator), or the front server address (client)")
		rate     = flag.Float64("rate", 40, "client / aggregator measurement: open-loop request rate per second")
		tenant   = flag.String("tenant", "", "tenant tag stamped on generated load (client and aggregator measurement roles), propagated on the wire for per-tenant cost attribution")
		admin    = flag.String("admin", "", "admin plane listen address for -serve roles (/metrics, /healthz, /traces, /slo, /audit, /costs, /frontier, /debug/pprof, /debug/profiles; also enables request tracing, SLO tracking, ground-truth auditing, cost attribution and anomaly-triggered profiling on the front server)")
	)
	flag.Parse()

	sc := experiments.DefaultScale()
	if *quick {
		sc = experiments.QuickScale()
	}
	if *comps > 0 {
		sc.Components = *comps
	}
	if *shards > 0 {
		sc.Shards = *shards
	}
	if *session > 0 {
		sc.SessionSeconds = *session
	}
	if *samples > 0 {
		sc.AccuracySamples = *samples
	}
	if *seed > 0 {
		sc.Seed = *seed
	}

	var err error
	if *serve != "" {
		err = runServe(*serve, *workload, *listen, *peers, *admin, *tenant, *rate, sc)
	} else {
		err = run(os.Stdout, *exp, sc, *repeats, *requests)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "attrader:", err)
		os.Exit(1)
	}
}

// runner executes one registered experiment at a scale.
type runner func(sc experiments.Scale, repeats, requests int) error

// runners maps every registered experiment name to its implementation.
// TestRunnersCoverRegistry asserts the map and the registry agree, so a
// new experiment cannot be registered without being runnable (or vice
// versa). Aliases that share one run (table1/table2, fig5/fig6,
// fig7/fig8) map to the same function and are deduplicated by `all`.
var runners = map[string]runner{
	"creation":      func(sc experiments.Scale, _, _ int) error { return runCreation(sc) },
	"fig3":          func(sc experiments.Scale, repeats, _ int) error { return runFig3(sc, repeats) },
	"fig4":          func(sc experiments.Scale, _, requests int) error { return runFig4(sc, requests) },
	"table1":        func(sc experiments.Scale, _, _ int) error { return runTables(sc) },
	"table2":        func(sc experiments.Scale, _, _ int) error { return runTables(sc) },
	"fig5":          func(sc experiments.Scale, _, _ int) error { return runHours(sc) },
	"fig6":          func(sc experiments.Scale, _, _ int) error { return runHours(sc) },
	"fig7":          func(sc experiments.Scale, _, _ int) error { _, err := runDay(sc, true); return err },
	"fig8":          func(sc experiments.Scale, _, _ int) error { _, err := runDay(sc, true); return err },
	"headline":      func(sc experiments.Scale, _, _ int) error { return runHeadline(sc) },
	"overload":      func(sc experiments.Scale, _, _ int) error { return runOverload(sc) },
	"aggcompare":    func(sc experiments.Scale, _, _ int) error { return runAggCompare(sc) },
	"netcompare":    func(sc experiments.Scale, _, _ int) error { return runNetCompare(sc) },
	"cachecompare":  func(sc experiments.Scale, _, _ int) error { return runCacheCompare(sc) },
	"tracecompare":  func(sc experiments.Scale, _, _ int) error { return runTraceCompare(sc) },
	"faultcompare":  func(sc experiments.Scale, _, _ int) error { return runFaultCompare(sc) },
	"ingestcompare": func(sc experiments.Scale, _, _ int) error { return runIngestCompare(sc) },
	"auditcompare":  func(sc experiments.Scale, _, _ int) error { return runAuditCompare(sc) },
	"costcompare":   func(sc experiments.Scale, _, _ int) error { return runCostCompare(sc) },
}

// aliasOf collapses experiment aliases onto the run they share, so
// `-exp all` executes each run once.
func aliasOf(name string) string {
	switch name {
	case "table2":
		return "table1"
	case "fig6":
		return "fig5"
	case "fig8":
		return "fig7"
	default:
		return name
	}
}

func run(out io.Writer, exp string, sc experiments.Scale, repeats, requests int) error {
	switch exp {
	case "list":
		printCatalogue(out)
		return nil
	case "all":
		done := map[string]bool{}
		for _, name := range experiments.Names() {
			key := aliasOf(name)
			if done[key] {
				continue
			}
			done[key] = true
			if err := runners[name](sc, repeats, requests); err != nil {
				return err
			}
		}
		return nil
	default:
		r, ok := runners[exp]
		if !ok {
			// A typo in a script must fail loudly AND helpfully: print
			// the catalogue, then exit non-zero through the error path.
			printCatalogue(out)
			return fmt.Errorf("unknown experiment %q", exp)
		}
		return r(sc, repeats, requests)
	}
}

// printCatalogue writes the registry-generated experiment list.
func printCatalogue(out io.Writer) {
	fmt.Fprintln(out, "experiments (run one with -exp <name>, or -exp all):")
	for _, e := range experiments.Registry() {
		fmt.Fprintf(out, "  %-12s %-10s %s\n", e.Name, e.Artifact, e.About)
	}
}

func timed(name string, f func() error) error {
	t0 := time.Now()
	fmt.Printf("== %s ==\n", name)
	if err := f(); err != nil {
		return err
	}
	fmt.Printf("[%s took %.1fs]\n\n", name, time.Since(t0).Seconds())
	return nil
}

func runTables(sc experiments.Scale) error {
	return timed("Tables 1-2 (CF recommender workloads)", func() error {
		svc, err := experiments.BuildCFService(sc)
		if err != nil {
			return err
		}
		res, err := experiments.RunCFComparison(svc, []float64{20, 40, 60, 80, 100})
		if err != nil {
			return err
		}
		fmt.Println(res.RenderTable1())
		fmt.Println(res.RenderTable2())
		return nil
	})
}

func runFig3(sc experiments.Scale, repeats int) error {
	return timed("Figure 3 (synopsis updating)", func() error {
		f3, err := experiments.RunFig3(sc, repeats)
		if err != nil {
			return err
		}
		fmt.Println(f3.Render())
		return nil
	})
}

func runFig4(sc experiments.Scale, requests int) error {
	return timed("Figure 4 (synopsis effectiveness)", func() error {
		cfSvc, err := experiments.BuildCFService(sc)
		if err != nil {
			return err
		}
		sSvc, err := experiments.BuildSearchService(sc)
		if err != nil {
			return err
		}
		f4, err := experiments.RunFig4(cfSvc, sSvc, requests)
		if err != nil {
			return err
		}
		fmt.Println(f4.Render())
		return nil
	})
}

func runHours(sc experiments.Scale) error {
	return timed("Figures 5-6 (hours 9/10/24, search workloads)", func() error {
		svc, err := experiments.BuildSearchService(sc)
		if err != nil {
			return err
		}
		hf, err := experiments.RunHourFigures(svc)
		if err != nil {
			return err
		}
		fmt.Println(hf.RenderFig5())
		fmt.Println(hf.RenderFig6())
		return nil
	})
}

func runDay(sc experiments.Scale, render bool) (*experiments.DayFigures, error) {
	var day *experiments.DayFigures
	err := timed("Figures 7-8 (24-hour search workloads)", func() error {
		svc, err := experiments.BuildSearchService(sc)
		if err != nil {
			return err
		}
		day, err = experiments.RunDayFigures(svc)
		if err != nil {
			return err
		}
		if render {
			fmt.Println(day.RenderFig7())
			fmt.Println(day.RenderFig8())
		}
		return nil
	})
	return day, err
}

func runCreation(sc experiments.Scale) error {
	return timed("Synopsis creation overheads", func() error {
		rep, err := experiments.RunCreation(sc)
		if err != nil {
			return err
		}
		fmt.Println(rep.Render())
		return nil
	})
}

func runOverload(sc experiments.Scale) error {
	return timed("Overload sweep (accuracy-aware frontend extension)", func() error {
		sw, err := experiments.RunOverload(sc, []float64{0.5, 1, 1.5, 2, 3})
		if err != nil {
			return err
		}
		fmt.Println(sw.Render())
		return nil
	})
}

func runAggCompare(sc experiments.Scale) error {
	return timed("Aggregation workload (ladder accuracy/latency + frontend overload)", func() error {
		res, err := experiments.RunAggCompare(sc, []float64{0.5, 1, 1.5, 2, 3})
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		return nil
	})
}

func runNetCompare(sc experiments.Scale) error {
	return timed("Networked serving layer (loopback sockets vs in-process runtime)", func() error {
		res, err := experiments.RunNetCompare(sc)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		return nil
	})
}

func runCacheCompare(sc experiments.Scale) error {
	return timed("Result cache (accuracy-tagged cache vs no-cache frontend under Zipf load)", func() error {
		res, err := experiments.RunCacheCompare(sc)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		return nil
	})
}

func runTraceCompare(sc experiments.Scale) error {
	return timed("Decision tracing (stitching, budget accounting, zero-cost-off)", func() error {
		res, err := experiments.RunTraceCompare(sc)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		if !res.OK() {
			return fmt.Errorf("tracecompare contracts violated (see report above)")
		}
		return nil
	})
}

func runFaultCompare(sc experiments.Scale) error {
	return timed("Failure-domain hardening (kill/stall/heal sweep)", func() error {
		res, err := experiments.RunFaultCompare(sc)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		if v := res.Violations(); v != 0 || !res.ZeroAllocOK {
			return fmt.Errorf("faultcompare contracts violated: %d degradation violations, zeroAlloc=%v", v, res.ZeroAllocOK)
		}
		return nil
	})
}

func runIngestCompare(sc experiments.Scale) error {
	return timed("Live synopsis updates (streaming ingestion sweep)", func() error {
		res, err := experiments.RunIngestCompare(sc)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		if v := res.Violations(); v != 0 || !res.ZeroAllocOK || !res.WireOK {
			return fmt.Errorf("ingestcompare contracts violated: %d violations, zeroAlloc=%v, wire=%v",
				v, res.ZeroAllocOK, res.WireOK)
		}
		return nil
	})
}

func runHeadline(sc experiments.Scale) error {
	return timed("Headline results", func() error {
		cfSvc, err := experiments.BuildCFService(sc)
		if err != nil {
			return err
		}
		cfc, err := experiments.RunCFComparison(cfSvc, []float64{20, 40, 60, 80, 100})
		if err != nil {
			return err
		}
		day, err := runDay(sc, true)
		if err != nil {
			return err
		}
		fmt.Println(experiments.ComputeHeadline(cfc, day, sc.SearchPeakRate).Render())
		return nil
	})
}

func runCostCompare(sc experiments.Scale) error {
	return timed("Cost attribution plane (per-request accounting, frontier, profiler)", func() error {
		res, err := experiments.RunCostCompare(sc)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		if !res.OK() {
			return fmt.Errorf("costcompare contracts violated (see report above)")
		}
		return nil
	})
}

func runAuditCompare(sc experiments.Scale) error {
	return timed("Accuracy audit plane (ground-truth replay, burn rates, tail retention)", func() error {
		res, err := experiments.RunAuditCompare(sc)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		if !res.OK() {
			return fmt.Errorf("auditcompare contracts violated (see report above)")
		}
		return nil
	})
}
