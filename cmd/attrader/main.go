// Command attrader regenerates the tables and figures of the
// AccuracyTrader paper (ICPP 2016) from the Go reproduction.
//
// Usage:
//
//	attrader -exp list                 # show available experiments
//	attrader -exp table1               # Tables 1+2 (CF workloads)
//	attrader -exp fig3                 # synopsis updating overheads
//	attrader -exp fig4                 # synopsis effectiveness sections
//	attrader -exp fig5                 # hours 9/10/24 latency panels (+fig6)
//	attrader -exp fig7                 # 24-hour panels (+fig8)
//	attrader -exp creation             # synopsis creation overheads
//	attrader -exp headline             # paper §4.3 headline ratios
//	attrader -exp overload             # frontend overload sweep (extension)
//	attrader -exp all                  # everything above
//
// Scale flags shrink or grow the reproduction; defaults regenerate all
// shapes in a few minutes on a laptop.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"accuracytrader/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "list", "experiment to run (list|table1|table2|fig3|fig4|fig5|fig6|fig7|fig8|creation|headline|overload|all)")
		quick    = flag.Bool("quick", false, "use the reduced test-size scale")
		comps    = flag.Int("components", 0, "override simulated component count")
		shards   = flag.Int("shards", 0, "override real data shard count")
		session  = flag.Float64("session", 0, "override session seconds per arrival rate")
		samples  = flag.Int("samples", 0, "override accuracy samples per run")
		seed     = flag.Uint64("seed", 0, "override random seed")
		repeats  = flag.Int("repeats", 3, "fig3 repeats per scenario")
		requests = flag.Int("requests", 200, "fig4 requests per service")
	)
	flag.Parse()

	sc := experiments.DefaultScale()
	if *quick {
		sc = experiments.QuickScale()
	}
	if *comps > 0 {
		sc.Components = *comps
	}
	if *shards > 0 {
		sc.Shards = *shards
	}
	if *session > 0 {
		sc.SessionSeconds = *session
	}
	if *samples > 0 {
		sc.AccuracySamples = *samples
	}
	if *seed > 0 {
		sc.Seed = *seed
	}

	if err := run(*exp, sc, *repeats, *requests); err != nil {
		fmt.Fprintln(os.Stderr, "attrader:", err)
		os.Exit(1)
	}
}

func run(exp string, sc experiments.Scale, repeats, requests int) error {
	switch exp {
	case "list":
		fmt.Println("experiments: table1 table2 fig3 fig4 fig5 fig6 fig7 fig8 creation headline overload all")
		return nil
	case "table1", "table2":
		return runTables(sc)
	case "fig3":
		return runFig3(sc, repeats)
	case "fig4":
		return runFig4(sc, requests)
	case "fig5", "fig6":
		return runHours(sc)
	case "fig7", "fig8":
		_, err := runDay(sc, true)
		return err
	case "creation":
		return runCreation(sc)
	case "headline":
		return runHeadline(sc)
	case "overload":
		return runOverload(sc)
	case "all":
		if err := runCreation(sc); err != nil {
			return err
		}
		if err := runFig3(sc, repeats); err != nil {
			return err
		}
		if err := runFig4(sc, requests); err != nil {
			return err
		}
		if err := runTables(sc); err != nil {
			return err
		}
		if err := runHours(sc); err != nil {
			return err
		}
		if err := runHeadline(sc); err != nil {
			return err
		}
		if err := runOverload(sc); err != nil {
			return err
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
}

func timed(name string, f func() error) error {
	t0 := time.Now()
	fmt.Printf("== %s ==\n", name)
	if err := f(); err != nil {
		return err
	}
	fmt.Printf("[%s took %.1fs]\n\n", name, time.Since(t0).Seconds())
	return nil
}

func runTables(sc experiments.Scale) error {
	return timed("Tables 1-2 (CF recommender workloads)", func() error {
		svc, err := experiments.BuildCFService(sc)
		if err != nil {
			return err
		}
		res, err := experiments.RunCFComparison(svc, []float64{20, 40, 60, 80, 100})
		if err != nil {
			return err
		}
		fmt.Println(res.RenderTable1())
		fmt.Println(res.RenderTable2())
		return nil
	})
}

func runFig3(sc experiments.Scale, repeats int) error {
	return timed("Figure 3 (synopsis updating)", func() error {
		f3, err := experiments.RunFig3(sc, repeats)
		if err != nil {
			return err
		}
		fmt.Println(f3.Render())
		return nil
	})
}

func runFig4(sc experiments.Scale, requests int) error {
	return timed("Figure 4 (synopsis effectiveness)", func() error {
		cfSvc, err := experiments.BuildCFService(sc)
		if err != nil {
			return err
		}
		sSvc, err := experiments.BuildSearchService(sc)
		if err != nil {
			return err
		}
		f4, err := experiments.RunFig4(cfSvc, sSvc, requests)
		if err != nil {
			return err
		}
		fmt.Println(f4.Render())
		return nil
	})
}

func runHours(sc experiments.Scale) error {
	return timed("Figures 5-6 (hours 9/10/24, search workloads)", func() error {
		svc, err := experiments.BuildSearchService(sc)
		if err != nil {
			return err
		}
		hf, err := experiments.RunHourFigures(svc)
		if err != nil {
			return err
		}
		fmt.Println(hf.RenderFig5())
		fmt.Println(hf.RenderFig6())
		return nil
	})
}

func runDay(sc experiments.Scale, render bool) (*experiments.DayFigures, error) {
	var day *experiments.DayFigures
	err := timed("Figures 7-8 (24-hour search workloads)", func() error {
		svc, err := experiments.BuildSearchService(sc)
		if err != nil {
			return err
		}
		day, err = experiments.RunDayFigures(svc)
		if err != nil {
			return err
		}
		if render {
			fmt.Println(day.RenderFig7())
			fmt.Println(day.RenderFig8())
		}
		return nil
	})
	return day, err
}

func runCreation(sc experiments.Scale) error {
	return timed("Synopsis creation overheads", func() error {
		rep, err := experiments.RunCreation(sc)
		if err != nil {
			return err
		}
		fmt.Println(rep.Render())
		return nil
	})
}

func runOverload(sc experiments.Scale) error {
	return timed("Overload sweep (accuracy-aware frontend extension)", func() error {
		sw, err := experiments.RunOverload(sc, []float64{0.5, 1, 1.5, 2, 3})
		if err != nil {
			return err
		}
		fmt.Println(sw.Render())
		return nil
	})
}

func runHeadline(sc experiments.Scale) error {
	return timed("Headline results", func() error {
		cfSvc, err := experiments.BuildCFService(sc)
		if err != nil {
			return err
		}
		cfc, err := experiments.RunCFComparison(cfSvc, []float64{20, 40, 60, 80, 100})
		if err != nil {
			return err
		}
		day, err := runDay(sc, true)
		if err != nil {
			return err
		}
		fmt.Println(experiments.ComputeHeadline(cfc, day, sc.SearchPeakRate).Render())
		return nil
	})
}
