package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"accuracytrader/internal/agg"
	"accuracytrader/internal/audit"
	"accuracytrader/internal/breaker"
	"accuracytrader/internal/cost"
	"accuracytrader/internal/experiments"
	"accuracytrader/internal/frontend"
	"accuracytrader/internal/ingest"
	"accuracytrader/internal/netsvc"
	"accuracytrader/internal/obs"
	"accuracytrader/internal/service"
	"accuracytrader/internal/stats"
	"accuracytrader/internal/wire"
)

// drainTimeout bounds the graceful drain on SIGINT/SIGTERM: queued and
// in-flight requests get this long to finish before the hard close.
const drainTimeout = 10 * time.Second

// startAdmin stands up the admin plane when an address was given:
// /metrics (reg), /traces (rec), /healthz, /debug/pprof. Returns nil
// when addr is empty — every call site is nil-safe.
func startAdmin(addr string, reg *obs.Registry, rec *obs.Recorder) (*obs.Admin, error) {
	if addr == "" {
		return nil, nil
	}
	ad := obs.NewAdmin(reg, rec)
	got, err := ad.Listen(addr)
	if err != nil {
		return nil, fmt.Errorf("admin plane: %w", err)
	}
	fmt.Printf("admin plane on http://%s (/metrics /healthz /traces /slo /audit /costs /frontier /debug/pprof /debug/profiles)\n", got)
	return ad, nil
}

// netService is one workload prepared for network serving: the
// component handler over the deterministically built shards, plus
// request templates for probing and load.
type netService struct {
	workload  string
	shards    int
	handler   netsvc.Handler
	templates []*wire.Request
	// levelAcc is the measured per-ladder-level accuracy (aggregation
	// workload only) used to calibrate the front server's controller.
	levelAcc []float64
	// ingest, when non-nil, makes component servers accept v5 append
	// batches (agglive workload) and front servers forward them.
	ingest netsvc.IngestHandler
}

// buildNetService constructs the workload's shards from the scale —
// deterministic, so separate processes started with the same flags
// serve consistent data.
func buildNetService(workload string, sc experiments.Scale) (*netService, error) {
	ns := &netService{workload: workload, shards: sc.Shards}
	switch workload {
	case "agg":
		svc, err := experiments.BuildAggService(sc)
		if err != nil {
			return nil, err
		}
		ns.handler = netsvc.NewAggBackend(svc.Comps, netsvc.BackendOptions{})
		queries := svc.Data.SampleAggQueries(sc.Seed^0x51, 16)
		for _, q := range queries {
			ns.templates = append(ns.templates, &wire.Request{
				Kind: wire.KindAgg, Subset: -1, SLO: wire.SLONone, Level: wire.NoLevel,
				Agg: &wire.AggRequest{Op: uint8(q.Op), Lo: q.Lo, Hi: q.Hi},
			})
		}
		for l := 0; l < svc.Comps[0].Syn.Levels(); l++ {
			ns.levelAcc = append(ns.levelAcc, agg.MeasureLevelAccuracy(svc.Comps, queries, l))
		}
	case "agglive":
		// Same deterministic fact shards as "agg", but served from live
		// epoch-swapped stores: the initial rows are staged and compacted
		// into each shard's base synopsis, a merge worker keeps folding
		// later appends, and the server accepts v5 append batches.
		svc, err := experiments.BuildAggService(sc)
		if err != nil {
			return nil, err
		}
		lives := make([]*ingest.AggLive, len(svc.Data.Subsets))
		for i, tab := range svc.Data.Subsets {
			keys := make([]int32, tab.NumRows())
			vals := make([]float64, tab.NumRows())
			for r := 0; r < tab.NumRows(); r++ {
				keys[r], vals[r] = tab.Key(r), tab.Value(r)
			}
			l := ingest.NewAggLive(tab.NumKeys(), sc.AggConfig())
			if _, err := l.Append(keys, vals); err != nil {
				return nil, err
			}
			if _, _, _, err := l.Compact(); err != nil {
				return nil, err
			}
			lives[i] = l
			// Process-lifetime merge worker: publishes staged appends as
			// fresh epochs and periodically folds them into the base.
			ingest.NewWorker(l, ingest.WorkerOptions{Interval: 5 * time.Millisecond, CompactEvery: 64})
		}
		ns.handler = netsvc.NewLiveAggBackend(lives, netsvc.BackendOptions{})
		ns.ingest = netsvc.NewLiveIngestHandler(netsvc.LiveStores{Agg: lives})
		queries := svc.Data.SampleAggQueries(sc.Seed^0x51, 16)
		for _, q := range queries {
			ns.templates = append(ns.templates, &wire.Request{
				Kind: wire.KindAgg, Subset: -1, SLO: wire.SLONone, Level: wire.NoLevel,
				Agg: &wire.AggRequest{Op: uint8(q.Op), Lo: q.Lo, Hi: q.Hi},
			})
		}
		for l := 0; l < svc.Comps[0].Syn.Levels(); l++ {
			ns.levelAcc = append(ns.levelAcc, agg.MeasureLevelAccuracy(svc.Comps, queries, l))
		}
	case "cf":
		svc, err := experiments.BuildCFService(sc)
		if err != nil {
			return nil, err
		}
		ns.handler = netsvc.NewCFBackend(svc.Comps, netsvc.BackendOptions{})
		for _, r := range svc.Data.SampleCFRequests(sc.Seed^0x52, 16, 0.2) {
			ratings := make([]wire.Rating, len(r.Known))
			for i, kr := range r.Known {
				ratings[i] = wire.Rating{Item: kr.Item, Score: kr.Score}
			}
			ns.templates = append(ns.templates, &wire.Request{
				Kind: wire.KindCF, Subset: -1, SLO: wire.SLONone, Level: wire.NoLevel,
				CF: &wire.CFRequest{Ratings: ratings, Targets: r.Targets},
			})
		}
	case "search":
		svc, err := experiments.BuildSearchService(sc)
		if err != nil {
			return nil, err
		}
		ns.handler = netsvc.NewSearchBackend(svc.Comps, netsvc.BackendOptions{})
		for _, q := range svc.Data.SampleQueries(sc.Seed^0x53, 16) {
			ns.templates = append(ns.templates, &wire.Request{
				Kind: wire.KindSearch, Subset: -1, SLO: wire.SLONone, Level: wire.NoLevel,
				Search: &wire.SearchRequest{Query: q, K: 10},
			})
		}
	default:
		return nil, fmt.Errorf("unknown workload %q (agg|agglive|cf|search)", workload)
	}
	return ns, nil
}

// runServe dispatches the -serve role.
func runServe(role, workload, listen, peers, admin, tenant string, rate float64, sc experiments.Scale) error {
	switch role {
	case "component":
		return serveComponent(workload, listen, admin, sc)
	case "aggregator":
		return serveAggregator(workload, listen, peers, admin, tenant, rate, sc)
	case "client":
		return serveClient(workload, peers, tenant, rate, sc)
	default:
		return fmt.Errorf("unknown -serve role %q (component|aggregator|client)", role)
	}
}

// serveComponent builds the workload and answers sub-operations on
// listen until interrupted; SIGINT/SIGTERM drains gracefully.
func serveComponent(workload, listen, admin string, sc experiments.Scale) error {
	if listen == "" {
		return fmt.Errorf("-serve component requires -listen")
	}
	ns, err := buildNetService(workload, sc)
	if err != nil {
		return err
	}
	ad, err := startAdmin(admin, obs.NewRegistry(), nil)
	if err != nil {
		return err
	}
	srv := netsvc.NewServer(ns.handler, netsvc.ServerOptions{Workers: 2, QueueLen: 1024})
	if ns.ingest != nil {
		srv.SetIngest(ns.ingest)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe(listen) }()
	fmt.Printf("component server: workload=%s shards=%d listening on %s\n", workload, ns.shards, listen)
	select {
	case err := <-errCh:
		return err
	case <-interrupted():
		// Graceful: flip /healthz unready, stop accepting, drain queued
		// and in-flight requests, then close.
		if ad != nil {
			ad.SetReady(false)
		}
		drained := srv.Shutdown(drainTimeout)
		st := srv.Stats()
		fmt.Printf("component server: served %d requests (%d abandoned past deadline, %d shed busy, drained=%v)\n",
			st.Requests, st.Abandoned, st.Shed, drained)
		if ad != nil {
			ad.Close()
		}
		return nil
	}
}

// serveAggregator connects to the component peers, verifies one
// round-trip, then either serves composed replies on listen (until
// interrupted) or drives an open-loop measurement session and exits.
func serveAggregator(workload, listen, peers, admin, tenant string, rate float64, sc experiments.Scale) error {
	addrs := strings.Split(peers, ",")
	if peers == "" || len(addrs) == 0 {
		return fmt.Errorf("-serve aggregator requires -peers host:port[,host:port...]")
	}
	ns, err := buildNetService(workload, sc)
	if err != nil {
		return err
	}
	// The admin plane also switches on request tracing, the unified
	// metrics registry, and anomaly-triggered profiling: frontend and
	// breaker counters land in /metrics, every request gets a decision
	// trace served at /traces, and a breaker trip or SLO burn captures
	// a bounded pprof profile into the /debug/profiles ring.
	var reg *obs.Registry
	var rec *obs.Recorder
	var prof *obs.Profiler
	if admin != "" {
		reg = obs.NewRegistry()
		rec = obs.NewRecorder(512, 64)
		prof = obs.NewProfiler(0, 0, 0)
	}
	aopts := netsvc.AggregatorOptions{
		Policy:   service.WaitAll,
		Deadline: 2 * time.Second,
		Metrics:  reg,
	}
	if prof != nil {
		p := prof
		aopts.Breaker.OnStateChange = func(s breaker.State) {
			if s == breaker.Open {
				p.Trigger("breaker-open")
			}
		}
	}
	agr, err := netsvc.NewAggregator(addrs, aopts)
	if err != nil {
		return err
	}
	defer agr.Close()
	if err := agr.WaitReady(15 * time.Second); err != nil {
		return err
	}

	// Probe: one whole-service round-trip must answer every subset.
	probeCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	subs, err := agr.Call(probeCtx, ns.templates[0])
	if err != nil {
		return fmt.Errorf("probe: %w", err)
	}
	for _, sr := range subs {
		if sr.Err != nil || sr.Skipped {
			return fmt.Errorf("probe: subset %d unanswered: err=%v skipped=%v", sr.Subset, sr.Err, sr.Skipped)
		}
	}
	fmt.Printf("aggregator: %d components answered the %s probe\n", len(subs), workload)

	if listen != "" {
		return serveFront(ns, agr, listen, admin, reg, rec, prof)
	}
	return measure(ns, agr, tenant, rate, time.Duration(sc.SessionSeconds*float64(time.Second)))
}

// serveFront runs the client-facing composed-reply server, with the
// accuracy-aware frontend pipeline when the workload has a calibrated
// ladder.
func serveFront(ns *netService, agr *netsvc.Aggregator, listen, admin string, reg *obs.Registry, rec *obs.Recorder, prof *obs.Profiler) error {
	var fe *frontend.Frontend
	if len(ns.levelAcc) > 0 {
		ctrl, err := frontend.NewController(frontend.ControllerConfig{
			Levels:             len(ns.levelAcc),
			LevelAccuracy:      ns.levelAcc,
			InflightSaturation: 4 * agr.Components(),
		})
		if err != nil {
			return err
		}
		fe, err = frontend.New(agr, frontend.Options{
			Replicas: 2,
			Router:   frontend.NewLeastLoaded(),
			Admission: []frontend.AdmissionPolicy{
				frontend.NewMaxInflight(4 * agr.Components()),
				frontend.NewQueueWatermark(0.35, 0.85),
			},
			Controller: ctrl,
			Metrics:    reg,
		})
		if err != nil {
			return err
		}
	}
	ad, err := startAdmin(admin, reg, rec)
	if err != nil {
		return err
	}
	if ad != nil {
		// /healthz answers 200 "degraded" (still routable — requests are
		// served around the failure) whenever any peer breaker is open.
		ad.SetHealthSource(agr.OpenBreakers)
	}
	fs := netsvc.NewFrontServer(agr, fe, netsvc.ServerOptions{Tracer: rec})
	// Forward append batches to their owning component; after each
	// observed epoch swap, re-warm up to 32 hot cache entries.
	fs.EnableIngest(32)
	// The admin plane also switches on SLO attainment tracking and the
	// ground-truth auditor: burn rates land in /metrics and /slo, audit
	// calibration tables in /audit, and audit-flagged traces are pinned
	// as exemplars at /traces?filter=anomaly.
	var auditor *audit.Auditor
	if ad != nil {
		slo := obs.NewSLOTracker(obs.DefaultSLOBudgets())
		slo.RegisterMetrics(reg)
		fs.EnableSLO(slo, nil)
		ad.SetSLOTracker(slo)
		auditor, err = fs.EnableAudit(audit.Config{Metrics: reg})
		if err != nil {
			return err
		}
		defer auditor.Close()
		ad.SetAuditSource(func() any {
			return audit.Report{Stats: auditor.Stats(), Tables: auditor.Tables()}
		})
		// Cost attribution: every answered request is metered into a
		// per-(tenant, class, workload, level) table served at /costs and
		// exported as cost_* metrics; joined with the auditor's realized
		// accuracy it becomes the live accuracy-vs-cost frontier at
		// /frontier.
		costs := cost.NewTable()
		costs.RegisterMetrics(reg)
		if err := fs.EnableCost(costs); err != nil {
			return err
		}
		ad.SetCostSource(func() any { return costs.Snapshot() })
		aud := auditor
		ad.SetFrontierSource(func() any {
			var pts []cost.AccuracyPoint
			for _, tv := range aud.Tables() {
				pts = append(pts, cost.AccuracyPoint{
					Workload: tv.Workload, Level: tv.Level,
					Accuracy: tv.MeanRealized, Samples: tv.Samples,
				})
			}
			return cost.Frontier(costs.Snapshot(), pts)
		})
		if prof != nil {
			ad.SetProfiler(prof)
			// Anomaly trigger #2 (breaker trips are wired at aggregator
			// construction): capture a profile when any class burns its
			// error budget faster than allowed.
			stopWatch := prof.WatchBurn(slo, 5*time.Second)
			defer stopWatch()
		}
	}
	errCh := make(chan error, 1)
	go func() { errCh <- fs.ListenAndServe(listen) }()
	fmt.Printf("aggregator: serving composed replies on %s (frontend: %v, tracing: %v)\n", listen, fe != nil, rec != nil)
	select {
	case err := <-errCh:
		return err
	case <-interrupted():
		if ad != nil {
			ad.SetReady(false)
		}
		drained := fs.Shutdown(drainTimeout)
		fmt.Printf("aggregator: drained=%v\n", drained)
		if rec != nil {
			if sum := obs.Summarize(rec.Snapshot(0)); sum.Traces > 0 {
				fmt.Println(sum.Render())
			}
		}
		if ad != nil {
			ad.Close()
		}
		return nil
	}
}

// serveClient dials a front server and drives open-loop, tenant-tagged
// load at it for the session window — the load-generator role used to
// exercise the full serving path (and the cost plane behind it) from a
// separate process. peers names the front server's address.
func serveClient(workload, peers, tenant string, rate float64, sc experiments.Scale) error {
	if peers == "" || strings.Contains(peers, ",") {
		return fmt.Errorf("-serve client requires -peers with exactly one front-server address")
	}
	// Built only for its deterministic request templates (and the ladder
	// presence check): the same flags the servers started with yield the
	// same queries here.
	ns, err := buildNetService(workload, sc)
	if err != nil {
		return err
	}
	cl, err := netsvc.DialClient(peers, netsvc.ClientOptions{})
	if err != nil {
		return err
	}
	defer cl.Close()
	// Workloads with a calibrated ladder get an accuracy SLO on every
	// request — the frontend picks the ladder level, so the cost table
	// and frontier see the accuracy-trading path, not just best-effort.
	bounded := len(ns.levelAcc) > 0
	window := time.Duration(sc.SessionSeconds * float64(time.Second))
	var mu sync.Mutex
	lat := stats.NewLatencyRecorder(2048)
	errs := 0
	rng := stats.NewRNG(0xc11e)
	fired := netsvc.OpenLoop(rng, rate, window, func(r int) {
		req := *ns.templates[r%len(ns.templates)]
		req.ID = uint64(r)
		req.Tenant = tenant
		if bounded {
			req.SLO, req.MinAccuracy = wire.SLOBounded, 0.9
		}
		t0 := time.Now()
		rep, err := cl.Call(context.Background(), &req)
		d := float64(time.Since(t0)) / float64(time.Millisecond)
		mu.Lock()
		defer mu.Unlock()
		if err != nil || rep.Status != wire.ReplyOK {
			errs++
			return
		}
		lat.Record(d)
	})
	fmt.Printf("client: %d requests at %.0f req/s over %.1fs (tenant=%q)\n", fired, rate, window.Seconds(), tenant)
	fmt.Printf("  answered %d (errors %d)  p50 %.1fms  p99 %.1fms\n",
		lat.Count(), errs, lat.Percentile(50), lat.Percentile(99))
	if lat.Count() == 0 {
		return fmt.Errorf("no requests answered")
	}
	return nil
}

// measure drives open-loop load through the aggregator and reports.
func measure(ns *netService, agr *netsvc.Aggregator, tenant string, rate float64, window time.Duration) error {
	var mu sync.Mutex
	lat := stats.NewLatencyRecorder(2048)
	errs := 0
	rng := stats.NewRNG(0x5e55)
	fired := netsvc.OpenLoop(rng, rate, window, func(r int) {
		req := *ns.templates[r%len(ns.templates)]
		req.ID = uint64(r)
		req.Tenant = tenant
		t0 := time.Now()
		subs, err := agr.Call(context.Background(), &req)
		d := float64(time.Since(t0)) / float64(time.Millisecond)
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			errs++
			return
		}
		for _, sr := range subs {
			if sr.Err != nil {
				errs++
				return
			}
		}
		lat.Record(d)
	})
	st := agr.Stats()
	fmt.Printf("aggregator measurement: %d requests at %.0f req/s over %.1fs\n", fired, rate, window.Seconds())
	fmt.Printf("  answered %d (errors %d)  p50 %.1fms  p99 %.1fms  sub-ops %d  reconnects %d\n",
		lat.Count(), errs, lat.Percentile(50), lat.Percentile(99), st.SubOps, st.Reconnects)
	if lat.Count() == 0 {
		return fmt.Errorf("no requests answered")
	}
	return nil
}

// interrupted returns a channel closed on SIGINT/SIGTERM.
func interrupted() <-chan os.Signal {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	return ch
}
