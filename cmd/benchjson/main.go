// Benchjson converts `go test -bench` text output into a stable JSON
// record, so benchmark trajectories can be committed and diffed
// (BENCH_baseline.json / BENCH_after.json at the repo root).
//
// Usage:
//
//	go test -run '^$' -bench 'SearchQuery|EngineProcessSynopsis|CFWeight|Table1' \
//	    -benchmem . | go run ./cmd/benchjson > BENCH_after.json
//
// It reads the benchmark output on stdin and writes JSON on stdout.
// Standard units (ns/op, B/op, allocs/op) become top-level fields; every
// other unit — including the experiment benchmarks' domain metrics such
// as at_p999_ms — lands in the metrics map.
//
// With -assert-zero-allocs <regexp>, benchjson additionally acts as a
// CI guard: every benchmark whose name matches the pattern must report
// 0 allocs/op (run the benchmarks with -benchmem), and at least one
// benchmark must match — a renamed benchmark fails the guard instead of
// silently skipping it. CI uses this to pin the result cache's
// zero-allocation hit path.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the committed JSON document.
type Report struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// cpuSuffix strips the -GOMAXPROCS suffix go test appends to names.
var cpuSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	assertZero := flag.String("assert-zero-allocs", "",
		"fail unless every matching benchmark reports 0 allocs/op (and at least one matches)")
	flag.Parse()
	if err := run(os.Stdin, os.Stdout, *assertZero); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// run converts bench output from r to JSON on w, applying the optional
// zero-alloc guard.
func run(r io.Reader, w io.Writer, assertZero string) error {
	var rep Report
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines on input")
	}
	if assertZero != "" {
		if err := assertZeroAllocs(rep, assertZero); err != nil {
			return err
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// assertZeroAllocs enforces the 0 allocs/op guard over benchmarks
// matching the pattern.
func assertZeroAllocs(rep Report, pattern string) error {
	re, err := regexp.Compile(pattern)
	if err != nil {
		return fmt.Errorf("bad -assert-zero-allocs pattern: %w", err)
	}
	matched := 0
	for _, b := range rep.Benchmarks {
		if !re.MatchString(b.Name) {
			continue
		}
		matched++
		if b.AllocsPerOp != 0 {
			return fmt.Errorf("%s allocates %.1f allocs/op, want 0", b.Name, b.AllocsPerOp)
		}
	}
	if matched == 0 {
		return fmt.Errorf("no benchmark matches %q (renamed? run with -benchmem?)", pattern)
	}
	return nil
}

// parseLine parses one "BenchmarkName  N  v unit  v unit ..." line.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	b := Benchmark{Name: cpuSuffix.ReplaceAllString(fields[0], "")}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = v
		}
	}
	return b, true
}
