// Benchjson converts `go test -bench` text output into a stable JSON
// record, so benchmark trajectories can be committed and diffed
// (BENCH_baseline.json / BENCH_after.json at the repo root).
//
// Usage:
//
//	go test -run '^$' -bench 'SearchQuery|EngineProcessSynopsis|CFWeight|Table1' \
//	    -benchmem . | go run ./cmd/benchjson > BENCH_after.json
//
// It reads the benchmark output on stdin and writes JSON on stdout.
// Standard units (ns/op, B/op, allocs/op) become top-level fields; every
// other unit — including the experiment benchmarks' domain metrics such
// as at_p999_ms — lands in the metrics map.
//
// With -assert-zero-allocs <regexp>, benchjson additionally acts as a
// CI guard: every benchmark whose name matches the pattern must report
// 0 allocs/op (run the benchmarks with -benchmem), and at least one
// benchmark must match — a renamed benchmark fails the guard instead of
// silently skipping it. CI uses this to pin the result cache's
// zero-allocation hit path.
//
// With -assert-max-regress <pct> (plus -regress-base and
// -regress-subject regexps), benchjson compares two benchmark groups
// from the same run: the mean ns/op of the subject group must not
// exceed the base group's by more than pct percent. Both patterns must
// match at least one benchmark — a renamed benchmark fails the guard.
// CI uses this to bound the request-tracing overhead: the traced
// serving-path benchmark against its untraced twin.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the committed JSON document.
type Report struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// cpuSuffix strips the -GOMAXPROCS suffix go test appends to names.
var cpuSuffix = regexp.MustCompile(`-\d+$`)

// regressGuard is the -assert-max-regress configuration: subject
// benchmarks may be at most MaxPct percent slower (mean ns/op) than
// base benchmarks.
type regressGuard struct {
	MaxPct  float64
	Base    string // regexp over benchmark names
	Subject string // regexp over benchmark names
}

func main() {
	assertZero := flag.String("assert-zero-allocs", "",
		"fail unless every matching benchmark reports 0 allocs/op (and at least one matches)")
	maxRegress := flag.Float64("assert-max-regress", 0,
		"fail if the -regress-subject benchmarks' mean ns/op exceeds the -regress-base mean by more than this percentage")
	regressBase := flag.String("regress-base", "",
		"baseline benchmark name regexp for -assert-max-regress")
	regressSubject := flag.String("regress-subject", "",
		"subject benchmark name regexp for -assert-max-regress")
	flag.Parse()
	var guard *regressGuard
	if *maxRegress > 0 || *regressBase != "" || *regressSubject != "" {
		guard = &regressGuard{MaxPct: *maxRegress, Base: *regressBase, Subject: *regressSubject}
	}
	if err := run(os.Stdin, os.Stdout, *assertZero, guard); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// run converts bench output from r to JSON on w, applying the optional
// guards.
func run(r io.Reader, w io.Writer, assertZero string, guard *regressGuard) error {
	var rep Report
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines on input")
	}
	if assertZero != "" {
		if err := assertZeroAllocs(rep, assertZero); err != nil {
			return err
		}
	}
	if guard != nil {
		if err := assertMaxRegress(rep, guard); err != nil {
			return err
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// assertZeroAllocs enforces the 0 allocs/op guard over benchmarks
// matching the pattern.
func assertZeroAllocs(rep Report, pattern string) error {
	re, err := regexp.Compile(pattern)
	if err != nil {
		return fmt.Errorf("bad -assert-zero-allocs pattern: %w", err)
	}
	matched := 0
	for _, b := range rep.Benchmarks {
		if !re.MatchString(b.Name) {
			continue
		}
		matched++
		if b.AllocsPerOp != 0 {
			return fmt.Errorf("%s allocates %.1f allocs/op, want 0", b.Name, b.AllocsPerOp)
		}
	}
	if matched == 0 {
		return fmt.Errorf("no benchmark matches %q (renamed? run with -benchmem?)", pattern)
	}
	return nil
}

// assertMaxRegress enforces the bounded-regression guard: the mean
// ns/op over benchmarks matching guard.Subject must not exceed the
// mean over guard.Base by more than guard.MaxPct percent. Both
// patterns must match at least one benchmark, so a renamed benchmark
// fails instead of vacuously passing.
func assertMaxRegress(rep Report, guard *regressGuard) error {
	if guard.MaxPct <= 0 {
		return fmt.Errorf("-assert-max-regress requires a positive percentage")
	}
	if guard.Base == "" || guard.Subject == "" {
		return fmt.Errorf("-assert-max-regress requires both -regress-base and -regress-subject")
	}
	baseMean, baseN, err := meanNsPerOp(rep, guard.Base, "-regress-base")
	if err != nil {
		return err
	}
	subjMean, subjN, err := meanNsPerOp(rep, guard.Subject, "-regress-subject")
	if err != nil {
		return err
	}
	limit := baseMean * (1 + guard.MaxPct/100)
	if subjMean > limit {
		return fmt.Errorf("regression: subject %.1f ns/op (%d benchmarks) exceeds base %.1f ns/op (%d benchmarks) by more than %.1f%% (limit %.1f ns/op)",
			subjMean, subjN, baseMean, baseN, guard.MaxPct, limit)
	}
	return nil
}

// meanNsPerOp averages ns/op over benchmarks matching pattern,
// erroring when the pattern is invalid or matches nothing.
func meanNsPerOp(rep Report, pattern, flagName string) (float64, int, error) {
	re, err := regexp.Compile(pattern)
	if err != nil {
		return 0, 0, fmt.Errorf("bad %s pattern: %w", flagName, err)
	}
	sum, n := 0.0, 0
	for _, b := range rep.Benchmarks {
		if re.MatchString(b.Name) {
			sum += b.NsPerOp
			n++
		}
	}
	if n == 0 {
		return 0, 0, fmt.Errorf("no benchmark matches %s %q (renamed?)", flagName, pattern)
	}
	return sum / float64(n), n, nil
}

// parseLine parses one "BenchmarkName  N  v unit  v unit ..." line.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	b := Benchmark{Name: cpuSuffix.ReplaceAllString(fields[0], "")}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = v
		}
	}
	return b, true
}
