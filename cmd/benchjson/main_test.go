package main

import (
	"strings"
	"testing"
)

const benchOutput = `goos: linux
goarch: amd64
pkg: accuracytrader/internal/rescache
BenchmarkCacheHit-8   	32002186	        37.5 ns/op	       0 B/op	       0 allocs/op
BenchmarkCacheMiss-8  	50123456	        21.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkLeaky-8      	  100000	     10032 ns/op	     128 B/op	       3 allocs/op
PASS
`

func TestRunEmitsJSON(t *testing.T) {
	var out strings.Builder
	if err := run(strings.NewReader(benchOutput), &out, "", nil); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"BenchmarkCacheHit"`, `"ns_per_op": 37.5`, `"allocs_per_op": 3`} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("JSON missing %q:\n%s", want, out.String())
		}
	}
}

func TestAssertZeroAllocsGuard(t *testing.T) {
	var out strings.Builder
	// Matching zero-alloc benchmarks pass.
	if err := run(strings.NewReader(benchOutput), &out, "CacheHit|CacheMiss", nil); err != nil {
		t.Fatalf("clean benchmarks failed the guard: %v", err)
	}
	// An allocating benchmark in the match set fails.
	if err := run(strings.NewReader(benchOutput), &out, "Leaky", nil); err == nil ||
		!strings.Contains(err.Error(), "allocs/op") {
		t.Fatalf("allocating benchmark passed the guard: %v", err)
	}
	// A pattern matching nothing fails loudly — a renamed benchmark
	// must not silently disable the guard.
	if err := run(strings.NewReader(benchOutput), &out, "NoSuchBench", nil); err == nil ||
		!strings.Contains(err.Error(), "no benchmark matches") {
		t.Fatalf("empty match set passed the guard: %v", err)
	}
	// A bad pattern is an error, not a panic.
	if err := run(strings.NewReader(benchOutput), &out, "(", nil); err == nil {
		t.Fatal("invalid pattern accepted")
	}
}

// tracePairOutput is a traced/untraced serving-path benchmark pair as
// emitted by internal/netsvc — the shape the CI obs-smoke job feeds
// through -assert-max-regress.
const tracePairOutput = `goos: linux
goarch: amd64
pkg: accuracytrader/internal/netsvc
BenchmarkServeUntraced-8   	    5000	    200000 ns/op	    2048 B/op	      24 allocs/op
BenchmarkServeTraced-8     	    5000	    210000 ns/op	    2304 B/op	      27 allocs/op
PASS
`

func TestAssertMaxRegressGuard(t *testing.T) {
	var out strings.Builder
	guard := func(pct float64, base, subj string) *regressGuard {
		return &regressGuard{MaxPct: pct, Base: base, Subject: subj}
	}
	// 5% measured regression passes a 10% budget.
	if err := run(strings.NewReader(tracePairOutput), &out,
		"", guard(10, "ServeUntraced", "ServeTraced")); err != nil {
		t.Fatalf("5%% regression failed a 10%% budget: %v", err)
	}
	// ... and fails a 2% budget, naming both means.
	err := run(strings.NewReader(tracePairOutput), &out,
		"", guard(2, "ServeUntraced", "ServeTraced"))
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Fatalf("5%% regression passed a 2%% budget: %v", err)
	}
	if !strings.Contains(err.Error(), "210000.0") || !strings.Contains(err.Error(), "200000.0") {
		t.Fatalf("regression error does not report both means: %v", err)
	}
	// A pattern matching nothing fails loudly — a renamed benchmark
	// must not silently disable the guard.
	if err := run(strings.NewReader(tracePairOutput), &out,
		"", guard(10, "NoSuchBase", "ServeTraced")); err == nil ||
		!strings.Contains(err.Error(), "no benchmark matches") {
		t.Fatalf("empty base match set passed the guard: %v", err)
	}
	if err := run(strings.NewReader(tracePairOutput), &out,
		"", guard(10, "ServeUntraced", "NoSuchSubject")); err == nil ||
		!strings.Contains(err.Error(), "no benchmark matches") {
		t.Fatalf("empty subject match set passed the guard: %v", err)
	}
	// Misconfiguration is an error, not a vacuous pass.
	if err := run(strings.NewReader(tracePairOutput), &out,
		"", guard(0, "ServeUntraced", "ServeTraced")); err == nil {
		t.Fatal("non-positive percentage accepted")
	}
	if err := run(strings.NewReader(tracePairOutput), &out,
		"", guard(10, "", "ServeTraced")); err == nil {
		t.Fatal("missing -regress-base accepted")
	}
	if err := run(strings.NewReader(tracePairOutput), &out,
		"", guard(10, "(", "ServeTraced")); err == nil {
		t.Fatal("invalid base pattern accepted")
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	var out strings.Builder
	if err := run(strings.NewReader("unrelated text\n"), &out, "", nil); err == nil {
		t.Fatal("input with no benchmarks accepted")
	}
}
