package main

import (
	"strings"
	"testing"
)

const benchOutput = `goos: linux
goarch: amd64
pkg: accuracytrader/internal/rescache
BenchmarkCacheHit-8   	32002186	        37.5 ns/op	       0 B/op	       0 allocs/op
BenchmarkCacheMiss-8  	50123456	        21.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkLeaky-8      	  100000	     10032 ns/op	     128 B/op	       3 allocs/op
PASS
`

func TestRunEmitsJSON(t *testing.T) {
	var out strings.Builder
	if err := run(strings.NewReader(benchOutput), &out, ""); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"BenchmarkCacheHit"`, `"ns_per_op": 37.5`, `"allocs_per_op": 3`} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("JSON missing %q:\n%s", want, out.String())
		}
	}
}

func TestAssertZeroAllocsGuard(t *testing.T) {
	var out strings.Builder
	// Matching zero-alloc benchmarks pass.
	if err := run(strings.NewReader(benchOutput), &out, "CacheHit|CacheMiss"); err != nil {
		t.Fatalf("clean benchmarks failed the guard: %v", err)
	}
	// An allocating benchmark in the match set fails.
	if err := run(strings.NewReader(benchOutput), &out, "Leaky"); err == nil ||
		!strings.Contains(err.Error(), "allocs/op") {
		t.Fatalf("allocating benchmark passed the guard: %v", err)
	}
	// A pattern matching nothing fails loudly — a renamed benchmark
	// must not silently disable the guard.
	if err := run(strings.NewReader(benchOutput), &out, "NoSuchBench"); err == nil ||
		!strings.Contains(err.Error(), "no benchmark matches") {
		t.Fatalf("empty match set passed the guard: %v", err)
	}
	// A bad pattern is an error, not a panic.
	if err := run(strings.NewReader(benchOutput), &out, "("); err == nil {
		t.Fatal("invalid pattern accepted")
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	var out strings.Builder
	if err := run(strings.NewReader("unrelated text\n"), &out, ""); err == nil {
		t.Fatal("input with no benchmarks accepted")
	}
}
