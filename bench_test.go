// Benchmark harness: one benchmark per paper table and figure (regenerate
// with `go test -bench=. -benchmem`), plus ablation benchmarks for the
// design choices called out in DESIGN.md §5 and micro-benchmarks for the
// hot substrate paths.
//
// The experiment benchmarks report the headline domain metrics through
// b.ReportMetric (tail latencies in ms, accuracy losses in %), so a bench
// run doubles as a compact reproduction record.
package accuracytrader

import (
	"fmt"
	"sync"
	"testing"

	"accuracytrader/internal/cf"
	"accuracytrader/internal/cluster"
	"accuracytrader/internal/core"
	"accuracytrader/internal/experiments"
	"accuracytrader/internal/rtree"
	"accuracytrader/internal/stats"
	"accuracytrader/internal/svd"
	"accuracytrader/internal/synopsis"
	"accuracytrader/internal/textindex"
	"accuracytrader/internal/workload"
)

// Shared services, built once: benchmarks measure experiments, not the
// offline build.
var (
	benchOnce   sync.Once
	benchCF     *experiments.CFService
	benchSearch *experiments.SearchService
)

func services(b *testing.B) (*experiments.CFService, *experiments.SearchService) {
	b.Helper()
	benchOnce.Do(func() {
		sc := experiments.QuickScale()
		var err error
		if benchCF, err = experiments.BuildCFService(sc); err != nil {
			panic(err)
		}
		if benchSearch, err = experiments.BuildSearchService(sc); err != nil {
			panic(err)
		}
	})
	return benchCF, benchSearch
}

// BenchmarkTable1 regenerates Table 1 (99.9th percentile component
// latency, CF workloads) and reports the heavy-load tails.
func BenchmarkTable1(b *testing.B) {
	svc, _ := services(b)
	var res *experiments.CFComparison
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.RunCFComparison(svc, []float64{20, 60, 100})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.BasicTail[2], "basic_p999_ms")
	b.ReportMetric(res.ReissueTail[2], "reissue_p999_ms")
	b.ReportMetric(res.ATTail[2], "at_p999_ms")
}

// BenchmarkTable2 regenerates Table 2 (accuracy losses, CF workloads).
func BenchmarkTable2(b *testing.B) {
	svc, _ := services(b)
	var res *experiments.CFComparison
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.RunCFComparison(svc, []float64{20, 60, 100})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.PartialLoss[2], "partial_loss_pct")
	b.ReportMetric(res.ATLoss[2], "at_loss_pct")
}

// BenchmarkFig3Update measures incremental synopsis updating (Figure 3).
func BenchmarkFig3Update(b *testing.B) {
	var f3 *experiments.Fig3
	var err error
	for i := 0; i < b.N; i++ {
		f3, err = experiments.RunFig3(experiments.QuickScale(), 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(f3.AddMs[9], "add10pct_ms")
	b.ReportMetric(f3.ChangeMs[9], "change10pct_ms")
	b.ReportMetric(f3.CreationMs, "creation_ms")
}

// BenchmarkFig4 regenerates the synopsis-effectiveness sections
// (Figure 4) and reports the concentration statistics.
func BenchmarkFig4(b *testing.B) {
	cfSvc, sSvc := services(b)
	var f4 *experiments.Fig4
	var err error
	for i := 0; i < b.N; i++ {
		f4, err = experiments.RunFig4(cfSvc, sSvc, 60)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(f4.SectionsCF[0], "cf_section1_pct")
	b.ReportMetric(f4.SectionsSearch[0], "search_section1_pct")
	b.ReportMetric(f4.TopSectionsShare(4), "search_top4_pct")
}

// BenchmarkFig5 regenerates the per-minute latency panels for hours
// 9/10/24 (Figure 5; the same run yields Figure 6).
func BenchmarkFig5(b *testing.B) {
	_, svc := services(b)
	var hf *experiments.HourFigures
	var err error
	for i := 0; i < b.N; i++ {
		hf, err = experiments.RunHourFigures(svc)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(experiments.TailOverall(hf.Windows[0].Basic, 99.9), "hour9_basic_p999_ms")
	b.ReportMetric(experiments.TailOverall(hf.Windows[0].AT, 99.9), "hour9_at_p999_ms")
}

// BenchmarkFig6 reports the accuracy-loss side of the hour runs.
func BenchmarkFig6(b *testing.B) {
	_, svc := services(b)
	var hf *experiments.HourFigures
	var err error
	for i := 0; i < b.N; i++ {
		hf, err = experiments.RunHourFigures(svc)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(hf.Windows[0].MeanLoss("partial"), "hour9_partial_loss_pct")
	b.ReportMetric(hf.Windows[0].MeanLoss("at"), "hour9_at_loss_pct")
}

// BenchmarkFig7 regenerates the 24-hour latency panels (Figure 7; the
// same run yields Figure 8).
func BenchmarkFig7(b *testing.B) {
	_, svc := services(b)
	var day *experiments.DayFigures
	var err error
	for i := 0; i < b.N; i++ {
		day, err = experiments.RunDayFigures(svc)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(day.BasicTail[20], "hour21_basic_p999_ms")
	b.ReportMetric(day.ATTail[20], "hour21_at_p999_ms")
}

// BenchmarkFig8 reports the 24-hour accuracy losses.
func BenchmarkFig8(b *testing.B) {
	_, svc := services(b)
	var day *experiments.DayFigures
	var err error
	for i := 0; i < b.N; i++ {
		day, err = experiments.RunDayFigures(svc)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(day.PartialLoss[20], "hour21_partial_loss_pct")
	b.ReportMetric(day.ATLoss[20], "hour21_at_loss_pct")
}

// BenchmarkSynopsisCreationCF measures full synopsis creation for one CF
// subset (paper §4.2 creation overheads).
func BenchmarkSynopsisCreationCF(b *testing.B) {
	sc := experiments.QuickScale()
	rcfg := workload.DefaultRatingsConfig()
	rcfg.UsersPerSubset = sc.UsersPerSubset
	rcfg.Items = sc.Items
	rcfg.Seed = 1
	m := workload.GenerateRatings(rcfg, 1).Subsets[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cf.BuildComponent(m, synopsis.Config{
			SVD:              svd.Config{Dims: 3, Epochs: 25, Seed: 1},
			CompressionRatio: 8,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSynopsisCreationSearch measures full synopsis creation for one
// search subset.
func BenchmarkSynopsisCreationSearch(b *testing.B) {
	sc := experiments.QuickScale()
	ccfg := workload.DefaultCorpusConfig()
	ccfg.DocsPerSubset = sc.DocsPerSubset
	ccfg.Seed = 1
	ix := workload.GenerateCorpus(ccfg, 1).Subsets[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := textindex.BuildComponent(ix, synopsis.Config{
			SVD:              svd.Config{Dims: 3, Epochs: 25, Seed: 1},
			CompressionRatio: 8,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblationRatio sweeps the synopsis compression ratio and
// reports the synopsis-only (initial result) top-10 overlap: smaller
// ratios give finer synopses — better initial accuracy at more synopsis
// work.
func BenchmarkAblationRatio(b *testing.B) {
	ccfg := workload.DefaultCorpusConfig()
	ccfg.Seed = 3
	data := workload.GenerateCorpus(ccfg, 1)
	for _, ratio := range []int{4, 8, 16, 32} {
		b.Run(fmt.Sprintf("ratio=%d", ratio), func(b *testing.B) {
			comp, err := textindex.BuildComponent(data.Subsets[0], synopsis.Config{
				SVD:              svd.Config{Dims: 3, Epochs: 25, Seed: 3},
				CompressionRatio: ratio,
			})
			if err != nil {
				b.Fatal(err)
			}
			queries := data.SampleQueries(5, 40)
			var overlap float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var sum stats.Summary
				for _, qs := range queries {
					q := comp.Ix.ParseQuery(qs)
					exact := textindex.ExactTopK(comp, q, 10)
					if len(exact) == 0 {
						continue
					}
					e := textindex.NewEngine(comp, q)
					e.ProcessSynopsis()
					sum.Add(textindex.TopKOverlap(exact, e.TopK(10)))
				}
				overlap = sum.Mean()
			}
			b.ReportMetric(100*overlap, "initial_overlap_pct")
			b.ReportMetric(float64(len(comp.Aggs)), "groups")
		})
	}
}

// BenchmarkAblationRanking isolates the paper's key idea: processing the
// most correlated sets first vs processing sets in arbitrary (id) order,
// at a fixed budget of 25% of the sets.
func BenchmarkAblationRanking(b *testing.B) {
	_, sSvc := services(b)
	comp := sSvc.Comps[0]
	queries := sSvc.Data.SampleQueries(6, 40)
	for _, ranked := range []bool{true, false} {
		name := "ranked"
		if !ranked {
			name = "id-order"
		}
		b.Run(name, func(b *testing.B) {
			var overlap float64
			for i := 0; i < b.N; i++ {
				var sum stats.Summary
				for _, qs := range queries {
					q := comp.Ix.ParseQuery(qs)
					exact := textindex.ExactTopK(comp, q, 10)
					if len(exact) == 0 {
						continue
					}
					e := textindex.NewEngine(comp, q)
					corr := e.ProcessSynopsis()
					budget := len(corr) / 4
					if ranked {
						for _, g := range core.Rank(corr)[:budget] {
							e.ProcessSet(g)
						}
					} else {
						for g := 0; g < budget; g++ {
							e.ProcessSet(g)
						}
					}
					sum.Add(textindex.TopKOverlap(exact, e.TopK(10)))
				}
				overlap = sum.Mean()
			}
			b.ReportMetric(100*overlap, "overlap_pct")
		})
	}
}

// BenchmarkAblationImax sweeps AccuracyTrader's imax cap (fraction of
// ranked sets) under heavy load and reports latency and loss — the
// trade-off behind the paper's 40% setting for search.
func BenchmarkAblationImax(b *testing.B) {
	_, svc := services(b)
	sc := svc.Scale
	arr := workload.PoissonArrivals(stats.NewRNG(7), 100, sc.SessionSeconds*1000)
	for _, frac := range []float64{0.2, 0.4, 1.0} {
		b.Run(fmt.Sprintf("imax=%.0f%%", 100*frac), func(b *testing.B) {
			var tail float64
			var res *cluster.Result
			for i := 0; i < b.N; i++ {
				cfg := cluster.Config{
					Components: sc.Components,
					Arrivals:   arr,
					Work:       svc.Work,
					UnitCostMs: 15.0 / float64(sc.DocsPerSubset),
					Technique:  cluster.AccuracyTrader,
					DeadlineMs: sc.DeadlineMs,
					IMaxFrac:   frac,
				}
				var err error
				res, err = cluster.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				tail = stats.Percentile(res.ComponentLatencies(), 99.9)
			}
			var sets stats.Summary
			for _, ops := range res.Ops {
				for _, op := range ops {
					sets.Add(float64(op.SetsProcessed))
				}
			}
			b.ReportMetric(tail, "p999_ms")
			b.ReportMetric(sets.Mean(), "mean_sets")
		})
	}
}

// BenchmarkAblationRTree sweeps the R-tree fan-out used for synopsis
// grouping.
func BenchmarkAblationRTree(b *testing.B) {
	rcfg := workload.DefaultRatingsConfig()
	rcfg.Seed = 4
	m := workload.GenerateRatings(rcfg, 1).Subsets[0]
	for _, fanout := range []int{4, 8, 16} {
		min := fanout / 4
		if min < 2 {
			min = 2
		}
		b.Run(fmt.Sprintf("fanout=%d", fanout), func(b *testing.B) {
			var groups int
			for i := 0; i < b.N; i++ {
				comp, err := cf.BuildComponent(m, synopsis.Config{
					SVD:              svd.Config{Dims: 3, Epochs: 25, Seed: 4},
					TreeMax:          fanout,
					TreeMin:          min,
					CompressionRatio: 8,
				})
				if err != nil {
					b.Fatal(err)
				}
				groups = len(comp.Aggs)
			}
			b.ReportMetric(float64(groups), "groups")
		})
	}
}

// BenchmarkAblationHedge sweeps the reissue hedge floor under moderate
// load.
func BenchmarkAblationHedge(b *testing.B) {
	svc, _ := services(b)
	sc := svc.Scale
	arr := workload.PoissonArrivals(stats.NewRNG(8), 40, sc.SessionSeconds*1000)
	for _, floor := range []float64{15, 30, 90} {
		b.Run(fmt.Sprintf("floor=%.0fms", floor), func(b *testing.B) {
			var tail float64
			for i := 0; i < b.N; i++ {
				cfg := cluster.Config{
					Components:   sc.Components,
					Arrivals:     arr,
					Work:         svc.Work,
					UnitCostMs:   15.0 / float64(sc.UsersPerSubset),
					Technique:    cluster.Reissue,
					DeadlineMs:   sc.DeadlineMs,
					HedgeFloorMs: floor,
				}
				res, err := cluster.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				tail = stats.Percentile(res.ComponentLatencies(), 99.9)
			}
			b.ReportMetric(tail, "p999_ms")
		})
	}
}

// --- Substrate micro-benchmarks ---

func BenchmarkRTreeInsert(b *testing.B) {
	rng := stats.NewRNG(1)
	tr := rtree.NewDefault(3)
	pts := make([][]float64, 4096)
	for i := range pts {
		pts[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(pts[i%len(pts)], i)
	}
}

func BenchmarkRTreeBulkLoad(b *testing.B) {
	rng := stats.NewRNG(2)
	items := make([]rtree.Item, 2000)
	for i := range items {
		items[i] = rtree.Item{Point: []float64{rng.Float64(), rng.Float64(), rng.Float64()}, ID: i}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rtree.Bulk(3, 2, 8, items)
	}
}

func BenchmarkSVDTrain(b *testing.B) {
	rng := stats.NewRNG(3)
	m := svd.NewMatrix(200, 100)
	for r := 0; r < 200; r++ {
		for c := 0; c < 100; c++ {
			if rng.Float64() < 0.2 {
				m.Set(r, c, rng.Norm(3, 1))
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		svd.Train(m, svd.Config{Dims: 3, Epochs: 10, Seed: 3})
	}
}

func BenchmarkCFWeight(b *testing.B) {
	rng := stats.NewRNG(4)
	mk := func() []cf.Rating {
		var rs []cf.Rating
		for i := 0; i < 200; i++ {
			if rng.Float64() < 0.3 {
				rs = append(rs, cf.Rating{Item: int32(i), Score: 1 + 4*rng.Float64()})
			}
		}
		return rs
	}
	a, c := mk(), mk()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cf.Weight(a, c)
	}
}

func BenchmarkSearchQuery(b *testing.B) {
	_, sSvc := services(b)
	ix := sSvc.Comps[0].Ix
	q := ix.ParseQuery(sSvc.Data.SampleQueries(9, 1)[0])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Search(q, 10)
	}
}

func BenchmarkEngineProcessSynopsis(b *testing.B) {
	cfSvc, _ := services(b)
	comp := cfSvc.Comps[0]
	spec := cfSvc.Data.SampleCFRequests(10, 1, 0.2)[0]
	req := cf.NewRequest(spec.Known, spec.Targets)
	// Steady-state pooled-engine path: Reset reuses the accumulators and
	// the target lookup, as the live runtime and the replays do.
	e := cf.NewEngine(comp, req)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Reset(comp, req)
		e.ProcessSynopsis()
	}
}

// BenchmarkEngineProcessSynopsisCold measures the unpooled path
// (construct an engine per request) — the shape the pre-optimization
// BenchmarkEngineProcessSynopsis had, kept so cold-start regressions
// stay visible next to the steady-state number above.
func BenchmarkEngineProcessSynopsisCold(b *testing.B) {
	cfSvc, _ := services(b)
	comp := cfSvc.Comps[0]
	spec := cfSvc.Data.SampleCFRequests(10, 1, 0.2)[0]
	req := cf.NewRequest(spec.Known, spec.Targets)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := cf.NewEngine(comp, req)
		e.ProcessSynopsis()
	}
}

func BenchmarkClusterSimulation(b *testing.B) {
	arr := workload.PoissonArrivals(stats.NewRNG(11), 50, 5000)
	cfg := cluster.Config{
		Components: 16,
		Arrivals:   arr,
		Work:       []cluster.WorkModel{{FullUnits: 400, SynopsisUnits: 20, NumGroups: 20}},
		UnitCostMs: 0.03,
		Technique:  cluster.AccuracyTrader,
		DeadlineMs: 100,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationAdaptive compares the fixed synopsis against the
// load-adaptive ladder (DESIGN.md §5) under extreme overload, where even
// synopsis-only work starts to queue.
func BenchmarkAblationAdaptive(b *testing.B) {
	arr := workload.PoissonArrivals(stats.NewRNG(12), 1200, 5000)
	work := cluster.WorkModel{
		FullUnits:      1000,
		SynopsisUnits:  120,
		NumGroups:      10,
		SynopsisLadder: []float64{5, 30, 120},
	}
	for _, adaptive := range []bool{false, true} {
		name := "fixed"
		if adaptive {
			name = "adaptive"
		}
		b.Run(name, func(b *testing.B) {
			var tail float64
			for i := 0; i < b.N; i++ {
				cfg := cluster.Config{
					Components:       4,
					Arrivals:         arr,
					Work:             []cluster.WorkModel{work},
					UnitCostMs:       0.01,
					Technique:        cluster.AccuracyTrader,
					DeadlineMs:       20,
					AdaptiveSynopsis: adaptive,
				}
				res, err := cluster.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				tail = stats.Percentile(res.ComponentLatencies(), 99.9)
			}
			b.ReportMetric(tail, "p999_ms")
		})
	}
}
