package accuracytrader

import (
	"bytes"
	"context"
	"testing"
	"time"
)

// toySource is a minimal FeatureSource: two clusters of points.
type toySource struct{ n int }

func (t toySource) NumPoints() int   { return t.n }
func (t toySource) NumFeatures() int { return 4 }
func (t toySource) Features(i int) []FeatureCell {
	base := 1.0
	if i >= t.n/2 {
		base = 5.0
	}
	return []FeatureCell{
		{Col: 0, Val: base},
		{Col: 1, Val: base + float64(i%3)*0.1},
		{Col: 2, Val: base - float64(i%2)*0.1},
	}
}

func TestFacadeBuildSynopsisAndPersist(t *testing.T) {
	syn, err := BuildSynopsis(toySource{n: 80}, SynopsisConfig{
		SVD:              SVDConfig{Dims: 2, Epochs: 15, Seed: 1},
		CompressionRatio: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if syn.NumPoints() != 80 || syn.NumGroups() < 2 {
		t.Fatalf("shape: points=%d groups=%d", syn.NumPoints(), syn.NumGroups())
	}
	var buf bytes.Buffer
	if err := syn.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSynopsis(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumGroups() != syn.NumGroups() {
		t.Fatal("round trip changed groups")
	}
	// Incremental update through the facade.
	st, err := loaded.Update([]Change{{Kind: Add, Cells: toySource{n: 80}.Features(0)}})
	if err != nil {
		t.Fatal(err)
	}
	if st.Added != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

type countEngine struct {
	corr []float64
	sets int
}

func (c *countEngine) ProcessSynopsis() []float64 { return c.corr }
func (c *countEngine) ProcessSet(int)             { c.sets++ }

func TestFacadeAlgorithm1(t *testing.T) {
	e := &countEngine{corr: []float64{0.3, 0.9, 0.1}}
	tr := Run(e, BudgetContinue(2), 0)
	if tr.SetsProcessed != 2 || e.sets != 2 {
		t.Fatalf("trace = %+v", tr)
	}
	order := Rank([]float64{0.3, 0.9, 0.1})
	if order[0] != 1 {
		t.Fatalf("rank = %v", order)
	}
	e2 := &countEngine{corr: []float64{0.5}}
	tr2 := RunWithDeadline(e2, 100*time.Millisecond, 0)
	if tr2.SetsProcessed != 1 {
		t.Fatalf("deadline run processed %d", tr2.SetsProcessed)
	}
}

func TestFacadeLiveCluster(t *testing.T) {
	h := func(ctx context.Context, payload interface{}) (interface{}, error) {
		return payload, nil
	}
	cl, err := NewCluster([]Handler{h, h}, WaitAll, ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	res, err := cl.Call(context.Background(), "ping")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].Value != "ping" || res[1].Value != "ping" {
		t.Fatalf("results = %+v", res)
	}
}
